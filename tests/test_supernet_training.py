"""Supernet weight sharing, subnet activation, and the trainable exit path."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.space import miniature_space
from repro.data import SyntheticVisionDataset
from repro.exits.multi_exit import MultiExitNetwork
from repro.exits.placement import ExitPlacement
from repro.exits.training import train_exits
from repro.nn.tensor import Tensor, no_grad
from repro.supernet.pretrain import pretrain_supernet
from repro.supernet.supernet import MiniSupernet


@pytest.fixture(scope="module")
def mini():
    space = miniature_space(num_classes=4)
    return space, MiniSupernet(space, seed=0)


@pytest.fixture(scope="module")
def mini_data():
    dataset = SyntheticVisionDataset(num_classes=4, image_size=32, seed=5)
    train = dataset.generate(192, split="train")
    val = dataset.generate(96, split="val")
    return train, val


class TestSupernetForward:
    def test_logit_shape(self, mini):
        space, supernet = mini
        config = space.decode(space.min_genome())
        out = supernet(Tensor(np.random.default_rng(0).normal(size=(2, 3, 32, 32))), config)
        assert out.logits.shape == (2, 4)

    def test_taps_one_per_mbconv_layer(self, mini):
        space, supernet = mini
        config = space.decode(space.max_genome())
        out = supernet(Tensor(np.zeros((1, 3, 32, 32))), config)
        assert len(out.taps) == config.total_mbconv_layers
        assert out.tap_channels == [
            spec.out_channels for spec in config.layers() if spec.kind == "mbconv"
        ]

    def test_different_subnets_share_weights(self, mini):
        """Gradients from a small subnet land inside the max-size tensors."""
        space, supernet = mini
        small = space.decode(space.min_genome())
        supernet.zero_grad()
        out = supernet(Tensor(np.random.default_rng(1).normal(size=(2, 3, 32, 32))), small)
        out.logits.sum().backward()
        stem_grad = supernet.stem_conv.weight.grad
        assert stem_grad is not None

    def test_depth_slicing(self, mini):
        """A depth-1 stage uses only the first shared block of that stage."""
        space, supernet = mini
        small = space.decode(space.min_genome())
        large = space.decode(space.max_genome())
        assert small.total_mbconv_layers < large.total_mbconv_layers

    def test_deterministic_forward(self, mini):
        space, supernet = mini
        config = space.decode(space.min_genome())
        x = Tensor(np.random.default_rng(2).normal(size=(2, 3, 32, 32)))
        with no_grad():
            a = supernet(x, config).logits.data
            b = supernet(x, config).logits.data
        np.testing.assert_array_equal(a, b)

    def test_kernel_slicing(self, mini):
        """A k=3 subnet uses the centre 3x3 of the shared 5x5 kernel, so
        outputs differ between kernel choices but parameters are shared."""
        space, supernet = mini
        genome = space.min_genome()
        config_k3 = space.decode(genome)
        genome5 = genome.copy()
        # Stage 2 (index 1) carries the (3, 5) kernel choice: gene offset
        # 2 + 4*1 + 2 selects its kernel.
        genome5[2 + 4 * 1 + 2] = 1
        config_k5 = space.decode(genome5)
        assert config_k3.stages[1].kernel == 3
        assert config_k5.stages[1].kernel == 5
        x = Tensor(np.random.default_rng(7).normal(size=(2, 3, 32, 32)))
        with no_grad():
            out3 = supernet(x, config_k3).logits.data
            out5 = supernet(x, config_k5).logits.data
        assert not np.allclose(out3, out5)

    def test_kernel_slice_gradients_center_only(self, mini):
        """Training the k=3 subnet must leave the 5x5 border weights of the
        shared depthwise kernel untouched."""
        space, supernet = mini
        config = space.decode(space.min_genome())  # k=3 everywhere
        supernet.zero_grad()
        out = supernet(Tensor(np.random.default_rng(8).normal(size=(2, 3, 32, 32))), config)
        out.logits.sum().backward()
        dw = supernet.stage_blocks[1][0].dw_conv.weight
        assert dw.shape[-1] == 5
        assert dw.grad is not None
        border = dw.grad.copy()
        border[:, :, 1:4, 1:4] = 0.0
        assert np.abs(border).max() == 0.0
        center = dw.grad[:, :, 1:4, 1:4]
        assert np.abs(center).max() > 0.0

    def test_depth_beyond_supernet_rejected(self, mini):
        space, supernet = mini
        from repro.arch.config import BackboneConfig, StageConfig, STAGE_STRIDES

        stages = list(space.decode(space.min_genome()).stages)
        stages[1] = StageConfig(stages[1].width, 8, 3, stages[1].expand, STAGE_STRIDES[1])
        bad = BackboneConfig(32, 8, tuple(stages), 64, num_classes=4)
        with pytest.raises(ValueError):
            supernet(Tensor(np.zeros((1, 3, 32, 32))), bad)


class TestPretraining:
    def test_loss_decreases(self, mini, mini_data):
        space, _ = mini
        supernet = MiniSupernet(space, seed=1)
        (train_x, train_y, _), _ = mini_data
        result = pretrain_supernet(supernet, train_x, train_y, steps=25, batch_size=32,
                                   lr=3e-3, seed=0)
        early = np.mean(result.losses[:5])
        late = np.mean(result.losses[-5:])
        assert late < early

    def test_subnets_above_chance(self, mini, mini_data):
        space, _ = mini
        supernet = MiniSupernet(space, seed=2)
        (train_x, train_y, _), _ = mini_data
        result = pretrain_supernet(supernet, train_x, train_y, steps=40, batch_size=32,
                                   lr=3e-3, seed=0)
        chance = 1.0 / space.num_classes
        assert result.min_subnet_accuracy > chance
        assert result.max_subnet_accuracy > chance


class TestMultiExitTrainablePath:
    @pytest.fixture(scope="class")
    def trained(self, mini, mini_data):
        space, _ = mini
        supernet = MiniSupernet(space, seed=3)
        (train_x, train_y, _), (val_x, val_y, _) = mini_data
        pretrain_supernet(supernet, train_x, train_y, steps=30, batch_size=32,
                          lr=3e-3, seed=0)
        config = space.decode(space.max_genome())
        total = config.total_mbconv_layers
        placement = ExitPlacement(total, (5, 7, total - 1))
        network = MultiExitNetwork(supernet, config, placement, seed=4)
        result = train_exits(network, train_x, train_y, val_x, val_y,
                             steps=40, batch_size=32, seed=0)
        return network, result

    def test_backbone_frozen(self, trained):
        network, _ = trained
        backbone_params = [p for p in network.supernet.parameters()]
        assert all(not p.requires_grad for p in backbone_params)

    def test_exit_loss_decreases(self, trained):
        _, result = trained
        assert result.final_loss < result.losses[0]

    def test_exits_above_chance(self, trained):
        _, result = trained
        assert result.evaluation is not None
        assert result.evaluation.n_i.max() > 1.0 / 4 + 0.05

    def test_union_at_least_final(self, trained):
        _, result = trained
        stats = result.evaluation
        assert stats.dynamic_accuracy >= stats.final_accuracy - 1e-9

    def test_predict_all_shapes(self, trained, mini_data):
        network, _ = trained
        _, (val_x, val_y, _) = mini_data
        exit_logits, final_logits = network.predict_all(val_x[:10])
        assert exit_logits.shape == (3, 10, 4)
        assert final_logits.shape == (10, 4)

    def test_placement_mismatch_rejected(self, mini):
        space, supernet = mini
        config = space.decode(space.min_genome())
        with pytest.raises(ValueError):
            MultiExitNetwork(supernet, config, ExitPlacement(99, (5,)))

    def test_training_requires_trainable_exits(self, mini, mini_data):
        space, supernet = mini
        config = space.decode(space.max_genome())
        placement = ExitPlacement(config.total_mbconv_layers, (5,))
        network = MultiExitNetwork(supernet, config, placement, seed=0)
        for branch in network.branches:
            branch.freeze()
        (train_x, train_y, _), _ = mini_data
        with pytest.raises(ValueError):
            train_exits(network, train_x, train_y, steps=1)
