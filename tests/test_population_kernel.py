"""Population-vectorized dynamic evaluation: stacked kernel bit-identity.

``DynamicEvaluator.evaluate_population`` lowers N placements at one DVFS
setting to a single padded cumsum-gather over the setting's cost table.
Its contract is the same absolute one the cost tables carry: every field
of every returned :class:`DynamicEvaluation` equals the per-placement
``evaluate`` loop *bit for bit*, across population sizes (including N=1
and duplicate genomes), random placements and random settings — so search
trajectories, caches and golden artifacts are unchanged no matter which
kernel produced them.  Alongside it: the thread-safety of the shared
:class:`CostTableBank`, the table-backed runtime planner/serving-profile
paths, and the ``population-eval`` task codec that shards exhaustive DVFS
grids.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy.exit_model import BackboneExitOracle
from repro.arch.cost import estimate_cost
from repro.baselines.attentivenas import attentivenas_model
from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.cost_table import CostTableBank
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import get_platform

PLATFORM_KEYS = ("tx2-gpu", "carmel-cpu")

_CONTEXTS: dict[str, dict] = {}


def _context(platform_key: str) -> dict:
    """Session-lazy heavy objects per platform.

    Three evaluators share one oracle (accuracy statistics are identical by
    construction), so each comparison isolates exactly one cost kernel:
    the stacked population kernel, the per-call cost-table path, and the
    pre-table per-layer reference loop.
    """
    if platform_key not in _CONTEXTS:
        platform = get_platform(platform_key)
        model = EnergyModel(platform)
        config = attentivenas_model("a3")
        cost = estimate_cost(config)
        dvfs = DvfsSpace(platform)
        oracle = BackboneExitOracle(
            config.key, config.total_mbconv_layers, 0.87, seed=0, n_samples=512
        )
        base = model.network_report(cost, dvfs.default_setting())
        kwargs = dict(
            config=config,
            cost=cost,
            oracle=oracle,
            energy_model=model,
            baseline_energy_j=base.energy_j,
            baseline_latency_s=base.latency_s,
        )
        _CONTEXTS[platform_key] = {
            "platform": platform,
            "model": model,
            "config": config,
            "cost": cost,
            "dvfs": dvfs,
            "settings": DvfsSpace(platform).all_settings(),
            "population": DynamicEvaluator(**kwargs),
            "per_call": DynamicEvaluator(**kwargs, use_population_kernel=False),
            "reference": DynamicEvaluator(**kwargs, use_tables=False),
        }
    return _CONTEXTS[platform_key]


def _assert_evaluations_identical(got, want):
    """Every field of a DynamicEvaluation, compared bit for bit."""
    assert got.placement == want.placement
    assert got.setting == want.setting
    assert got.exit_stats is want.exit_stats or np.array_equal(
        got.exit_stats.n_i, want.exit_stats.n_i
    )
    assert np.array_equal(got.exit_energy_j, want.exit_energy_j)
    assert np.array_equal(got.exit_latency_s, want.exit_latency_s)
    assert np.array_equal(got.scores, want.scores)
    assert got.dynamic_energy_j == want.dynamic_energy_j
    assert got.dynamic_latency_s == want.dynamic_latency_s
    assert got.energy_gain == want.energy_gain
    assert got.latency_gain == want.latency_gain
    assert got.d_score == want.d_score


def _placement_strategy(total_layers: int):
    return st.sets(
        st.integers(min_value=MIN_EXIT_POSITION, max_value=total_layers - 1),
        min_size=1,
        max_size=6,
    ).map(lambda s: tuple(sorted(s)))


class TestPopulationBitIdentity:
    """evaluate_population == [evaluate(p) for p in placements], bitwise."""

    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_matches_per_placement_loop(self, platform_key, data):
        ctx = _context(platform_key)
        total_layers = ctx["config"].total_mbconv_layers
        pool = data.draw(
            st.lists(
                _placement_strategy(total_layers), min_size=1, max_size=4, unique=True
            )
        )
        # Population indices into the pool: duplicates allowed, N from 1 up.
        indices = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(pool) - 1),
                min_size=1,
                max_size=8,
            )
        )
        setting = ctx["settings"][
            data.draw(st.integers(min_value=0, max_value=len(ctx["settings"]) - 1))
        ]
        placements = [
            ExitPlacement(total_layers, pool[i]) for i in indices
        ]
        batch = ctx["population"].evaluate_population(placements, setting)
        assert len(batch) == len(placements)
        for placement, got in zip(placements, batch):
            want = ctx["per_call"].evaluate(placement, setting)
            _assert_evaluations_identical(got, want)
            reference = ctx["reference"].evaluate(placement, setting)
            _assert_evaluations_identical(got, reference)

    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    def test_singleton_and_duplicates(self, platform_key):
        """Explicit N=1 and duplicate-heavy populations (not left to
        hypothesis's whims): duplicates must come back as the same cached
        evaluation, and a singleton batch must equal the scalar call."""
        ctx = _context(platform_key)
        total_layers = ctx["config"].total_mbconv_layers
        setting = ctx["dvfs"].default_setting()
        single = ExitPlacement(total_layers, (MIN_EXIT_POSITION, total_layers - 1))
        (only,) = ctx["population"].evaluate_population([single], setting)
        _assert_evaluations_identical(only, ctx["per_call"].evaluate(single, setting))

        other = ExitPlacement(total_layers, (total_layers // 2,))
        batch = ctx["population"].evaluate_population(
            [single, other, single, single, other], setting
        )
        assert batch[0] is batch[2] is batch[3]
        assert batch[1] is batch[4]
        _assert_evaluations_identical(batch[1], ctx["per_call"].evaluate(other, setting))

    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    def test_wide_population_crosses_vector_width(self, platform_key):
        """Mixed widths spanning the 8-exit pairwise-summation boundary —
        the d_score reduction switches strategy there, and both branches
        must stay bit-identical to the reference ``mean()``."""
        ctx = _context(platform_key)
        total_layers = ctx["config"].total_mbconv_layers
        rng = np.random.default_rng(7)
        slots = list(range(MIN_EXIT_POSITION, total_layers))
        placements = [
            ExitPlacement(
                total_layers,
                tuple(sorted(rng.choice(slots, size=size, replace=False).tolist())),
            )
            for size in (1, 3, 8, 10, min(11, len(slots)))
        ]
        setting = ctx["dvfs"].sample(rng)
        batch = ctx["population"].evaluate_population(placements, setting)
        for placement, got in zip(placements, batch):
            _assert_evaluations_identical(
                got, ctx["reference"].evaluate(placement, setting)
            )

    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    def test_fallback_without_population_kernel(self, platform_key):
        """use_population_kernel=False routes through the per-placement
        path but keeps the batched signature and result order."""
        ctx = _context(platform_key)
        total_layers = ctx["config"].total_mbconv_layers
        setting = ctx["dvfs"].default_setting()
        placements = [
            ExitPlacement(total_layers, (MIN_EXIT_POSITION,)),
            ExitPlacement(total_layers, (MIN_EXIT_POSITION + 2, total_layers - 1)),
        ]
        batch = ctx["per_call"].evaluate_population(placements, setting)
        for placement, got in zip(placements, batch):
            _assert_evaluations_identical(got, ctx["per_call"].evaluate(placement, setting))


class TestCostTableBankThreadSafety:
    def test_racing_builders_share_one_table(self):
        ctx = _context("tx2-gpu")
        bank = CostTableBank(ctx["model"], ctx["cost"])
        setting = ctx["dvfs"].default_setting()
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        tables = [None] * n_threads

        def build(slot):
            barrier.wait()
            tables[slot] = bank.table(setting)

        threads = [
            threading.Thread(target=build, args=(slot,)) for slot in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(bank) == 1
        assert all(table is tables[0] for table in tables)

    def test_distinct_settings_race_to_distinct_tables(self):
        ctx = _context("tx2-gpu")
        bank = CostTableBank(ctx["model"], ctx["cost"])
        rng = np.random.default_rng(3)
        settings_pair = [ctx["dvfs"].default_setting(), ctx["dvfs"].sample(rng)]
        assert settings_pair[0] != settings_pair[1]
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        tables = [None] * n_threads

        def build(slot):
            barrier.wait()
            tables[slot] = bank.table(settings_pair[slot % 2])

        threads = [
            threading.Thread(target=build, args=(slot,)) for slot in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(bank) == 2
        for slot, table in enumerate(tables):
            assert table is tables[slot % 2]


class TestRuntimePathsViaBank:
    """Runtime planners and serving profiles through the cost-table bank."""

    def test_per_exit_plan_identical_to_reference(self):
        from repro.runtime.planner import plan_per_exit_dvfs

        ctx = _context("tx2-gpu")
        placement = ExitPlacement(
            ctx["config"].total_mbconv_layers, (6, 10, ctx["config"].total_mbconv_layers - 1)
        )
        table_plan = plan_per_exit_dvfs(ctx["population"], placement, ctx["dvfs"])
        reference_plan = plan_per_exit_dvfs(ctx["reference"], placement, ctx["dvfs"])
        assert table_plan.settings == reference_plan.settings
        assert table_plan.single_setting_energy_j == reference_plan.single_setting_energy_j
        assert table_plan.per_exit_energy_j == reference_plan.per_exit_energy_j

    def test_serving_profiles_identical_to_reference(self):
        from repro.runtime.governor import DvfsGovernor
        from repro.serving.governor import _profiles_for

        ctx = _context("tx2-gpu")
        rng = np.random.default_rng(11)
        placement = ExitPlacement(ctx["config"].total_mbconv_layers, (7, 12))
        per_exit = {
            0: ctx["dvfs"].sample(rng),
            1: ctx["dvfs"].sample(rng),
            2: ctx["dvfs"].default_setting(),
        }
        governor = DvfsGovernor(ctx["dvfs"].default_setting(), per_exit=per_exit)
        table_profiles = _profiles_for(ctx["population"], placement, governor)
        reference_profiles = _profiles_for(ctx["reference"], placement, governor)
        assert len(table_profiles) == len(placement.positions) + 1
        for got, want in zip(table_profiles, reference_profiles):
            assert got.busy_s == want.busy_s
            assert got.overhead_s == want.overhead_s
            assert got.dynamic_energy_j == want.dynamic_energy_j
            assert got.passive_power_w == want.passive_power_w

    def test_path_costs_match_reference(self):
        ctx = _context("carmel-cpu")
        rng = np.random.default_rng(5)
        positions = (8, 13)
        setting = ctx["dvfs"].sample(rng)
        got = ctx["population"].path_costs(positions, setting)
        want = ctx["reference"].path_costs(positions, setting)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])
        assert got[2] == want[2]
        assert got[3] == want[3]


class TestPopulationEvalCodec:
    """The population-eval TaskSpec and the DVFS-grid artifacts it shards."""

    def test_spec_round_trip_matches_inline(self):
        from repro.engine.tasks import _dynamic_context, run_spec, task_spec

        backbone = attentivenas_model("a3")
        placements = ((5, 9), (6,), (5, 9))  # duplicates survive the codec
        setting_kwargs = dict(core_ghz=1.11, emc_ghz=1.062)
        spec = task_spec(
            "population-eval",
            platform="tx2-gpu",
            num_classes=100,
            seed=0,
            backbone=backbone,
            placements=placements,
            oracle_samples=512,
            **setting_kwargs,
        )
        rows = run_spec(spec)
        assert [tuple(r["positions"]) for r in rows] == list(placements)
        evaluator = _dynamic_context(
            "tx2-gpu", 100, 0, backbone, 1.0, 512, False, None, None
        )
        from repro.hardware.dvfs import DvfsSetting

        decoded = [
            ExitPlacement(backbone.total_mbconv_layers, p) for p in placements
        ]
        inline = evaluator.evaluate_population(
            decoded, DvfsSetting(**setting_kwargs)
        )
        for row, evaluation in zip(rows, inline):
            assert row["dynamic_energy_j"] == evaluation.dynamic_energy_j
            assert row["dynamic_latency_s"] == evaluation.dynamic_latency_s
            assert row["d_score"] == evaluation.d_score
            assert row["energy_gain"] == evaluation.energy_gain
            assert row["latency_gain"] == evaluation.latency_gain

    def test_sharded_grid_matches_compute_grid(self):
        from repro.engine.tasks import _dynamic_context
        from repro.experiments.dvfs_grid import compute_grid, sharded_grid

        backbone = attentivenas_model("a3")
        decoded = [
            ExitPlacement(backbone.total_mbconv_layers, p)
            for p in [(5, 9, 14), (7,)]
        ]
        sharded = sharded_grid(
            "tx2-gpu",
            backbone,
            decoded,
            workers=1,
            executor="serial",
            oracle_samples=512,
        )
        evaluator = _dynamic_context(
            "tx2-gpu", 100, 0, backbone, 1.0, 512, False, None, None
        )
        space = DvfsSpace(get_platform("tx2-gpu"))
        inline = compute_grid(evaluator, space, decoded)
        assert sharded.placements == inline.placements
        assert sharded.core_ghz == inline.core_ghz
        assert sharded.emc_ghz == inline.emc_ghz
        assert np.array_equal(sharded.dynamic_energy_j, inline.dynamic_energy_j)
        assert np.array_equal(sharded.dynamic_latency_s, inline.dynamic_latency_s)
        assert np.array_equal(sharded.d_score, inline.d_score)
        assert sharded.num_settings == space.cardinality
        # The artifact's argmin helpers address the assembled arrays.
        best = sharded.best_energy_setting()
        assert sharded.min_energy_j() == min(
            sharded.dynamic_energy_j[0, ci, ei]
            for ci in range(len(sharded.core_ghz))
            for ei in range(len(sharded.emc_ghz))
        )
        assert best in space.all_settings()

    def test_reference_placement_is_deterministic(self):
        from repro.experiments.table2 import reference_placement

        assert reference_placement(21) == reference_placement(21)
        placement = reference_placement(21)
        assert placement.positions[0] == MIN_EXIT_POSITION
        assert all(
            MIN_EXIT_POSITION <= p <= 20 for p in placement.positions
        )
