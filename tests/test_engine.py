"""EvaluationService, executors and the persistent result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.cache import ResultCache
from repro.engine.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.engine.service import EvalTask, EvaluationService
from repro.eval.static import StaticEvaluation
from repro.search.hadas import HadasConfig, HadasResult, HadasSearch
from repro.search.nsga2 import NSGA2, Nsga2Config
from repro.search.ooe import OuterResult
from repro.search.archive import ParetoArchive


def _square(x):
    return x * x


def _tiny_config(**overrides) -> HadasConfig:
    base = dict(
        platform="tx2-gpu",
        seed=5,
        outer_population=6,
        outer_generations=2,
        inner_population=6,
        inner_generations=2,
        ioe_candidates=2,
        oracle_samples=256,
    )
    base.update(overrides)
    return HadasConfig(**base)


def _pareto_bytes(result) -> bytes:
    members = sorted(result.dynn_pareto(), key=lambda ind: ind.key())
    return np.stack([ind.objectives for ind in members]).tobytes()


# --------------------------------------------------------------------- cache
class TestResultCache:
    def test_json_roundtrip_dataclass(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("static", backbone="b1", platform="tx2")
        evaluation = StaticEvaluation(accuracy=71.5, latency_s=0.02, energy_j=0.4)
        path = cache.put(key, evaluation)
        assert path.suffix == ".json"
        assert cache.get(key, cls=StaticEvaluation) == evaluation

    def test_pickle_fallback_for_rich_objects(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("inner", backbone="b1")
        value = {"archive": ParetoArchive(), "arr": np.arange(3)}
        path = cache.put(key, value)
        assert path.suffix == ".pkl"
        loaded = cache.get(key)
        assert isinstance(loaded["archive"], ParetoArchive)
        np.testing.assert_array_equal(loaded["arr"], np.arange(3))

    def test_key_is_order_insensitive_and_content_addressed(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = cache.key("static", backbone="b", seed=1)
        b = cache.key("static", seed=1, backbone="b")
        c = cache.key("static", seed=2, backbone="b")
        assert a == b
        assert a != c

    def test_hit_miss_accounting(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("static", backbone="b")
        assert cache.get(key) is None
        cache.put(key, {"x": 1})
        assert cache.get(key) == {"x": 1}
        stats = cache.stats("static")
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_version_bump_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, version="1")
        old.put(old.key("static", backbone="b"), {"x": 1})
        bumped = ResultCache(tmp_path, version="2")
        assert bumped.get(bumped.key("static", backbone="b")) is None
        assert bumped.stats("static").misses == 1

    def test_memoize_computes_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("static", backbone="b")
        calls = []

        def compute():
            calls.append(1)
            return {"x": 42}

        assert cache.memoize(key, compute) == {"x": 42}
        assert cache.memoize(key, compute) == {"x": 42}
        assert len(calls) == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("static", backbone="b")
        (tmp_path / f"{key.digest}.json").write_text("{not json")
        assert cache.get(key, default="fallback") == "fallback"

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key("a", i=1), {"x": 1})
        cache.put(cache.key("b", i=2), {"arr": ParetoArchive()})
        (tmp_path / "deadbeef.tmp").write_bytes(b"torn write")  # hard-kill remnant
        assert len(cache) == 2
        assert cache.clear() == 3
        assert len(cache) == 0
        assert not list(tmp_path.glob("*.tmp"))

    def test_stale_pickle_is_a_miss(self, tmp_path):
        import pickle

        cache = ResultCache(tmp_path)
        key = cache.key("inner", backbone="b")
        # A pickle referencing a module that no longer exists (same-length
        # rename keeps the pickle structurally valid).
        payload = pickle.dumps(ParetoArchive()).replace(
            b"repro.search.archive", b"repro.search.gonecls"
        )
        (tmp_path / f"{key.digest}.pkl").write_bytes(payload)
        assert cache.get(key, default="recompute") == "recompute"


# ----------------------------------------------------------------- executors
class TestExecutors:
    @pytest.mark.parametrize(
        "executor",
        [SerialExecutor(), ThreadExecutor(4), ProcessExecutor(2)],
        ids=["serial", "thread", "process"],
    )
    def test_order_preserved(self, executor):
        calls = [(_square, (i,)) for i in range(10)]
        try:
            assert executor.run(calls) == [i * i for i in range(10)]
        finally:
            executor.close()

    def test_make_executor_auto(self):
        # One worker: serial.  Above one worker: the AutoExecutor, which
        # picks its pool per batch — process for codec-backed (task-spec)
        # batches, threads for closure batches.
        assert make_executor("auto", 1).kind == "serial"
        auto = make_executor("auto", 4)
        assert auto.kind == "auto"
        try:
            assert auto.run([(_square, (i,)) for i in range(4)]) == [0, 1, 4, 9]
            assert auto._thread._pool is not None  # closures went to threads
            assert auto._process._pool is None
        finally:
            auto.close()

    def test_auto_executor_routes_codec_batches_to_process(self):
        from repro.engine.tasks import run_spec, task_spec

        auto = make_executor("auto", 2)
        specs = [task_spec("table2-dvfs", platform=p) for p in ("tx2-gpu", "agx-gpu")]
        try:
            results = auto.run([(run_spec, (spec,)) for spec in specs])
            assert auto._process._pool is not None  # specs went to processes
            assert auto._thread._pool is None
        finally:
            auto.close()
        assert [run_spec(spec) for spec in specs] == results

    def test_make_executor_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_executor("gpu-cluster")

    def test_pool_survives_pickling_without_live_pool(self):
        import pickle

        executor = ThreadExecutor(2)
        executor.run([(_square, (i,)) for i in range(4)])
        clone = pickle.loads(pickle.dumps(executor))
        try:
            assert clone.run([(_square, (3,))]) == [9]
        finally:
            clone.close()
            executor.close()


# ------------------------------------------------------------------- service
class TestEvaluationService:
    def test_unkeyed_batch(self):
        with EvaluationService(executor="thread", workers=4) as service:
            results = service.map(_square, [(i,) for i in range(8)])
        assert results == [i * i for i in range(8)]
        assert service.stats.executed == 8

    def test_keyed_tasks_hit_cache_across_batches(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def expensive(x):
            calls.append(x)
            return x * x

        with EvaluationService(cache=cache) as service:
            key = cache.key("toy", x=3)
            first = service.evaluate(EvalTask(expensive, (3,), key=key))
            second = service.evaluate(EvalTask(expensive, (3,), key=key))
        assert first == second == 9
        assert calls == [3]
        assert service.stats.cache_hits == 1

    def test_context_manager_tears_down_pools_on_error(self):
        service = EvaluationService(executor="thread", workers=2)
        with pytest.raises(RuntimeError, match="boom"):
            with service:
                service.map(_square, [(i,) for i in range(4)])
                assert service.executor._pool is not None
                raise RuntimeError("boom")
        assert service.executor._pool is None  # cancelled + shut down

    def test_within_batch_deduplication(self, tmp_path):
        cache = ResultCache(tmp_path)
        calls = []

        def expensive(x):
            calls.append(x)
            return x + 1

        key = cache.key("toy", x=7)
        with EvaluationService(cache=cache) as service:
            results = service.evaluate_batch(
                [EvalTask(expensive, (7,), key=key), EvalTask(expensive, (7,), key=key)]
            )
        assert results == [8, 8]
        assert calls == [7]
        assert service.stats.deduplicated == 1


# --------------------------------------------------------- engine-in-the-loop
class TestSearchDeterminism:
    def test_custom_evaluate_batch_override_wins_over_service(self):
        from repro.search.nsga2 import Problem
        from repro.search import operators

        class BatchProblem(Problem):
            def __init__(self):
                self.batch_calls = 0

            def sample(self, rng):
                return rng.integers(0, 4, size=3)

            def evaluate(self, genome):
                return np.asarray([float(genome.sum())]), {}

            def evaluate_batch(self, genomes):
                self.batch_calls += 1
                return [self.evaluate(g) for g in genomes]

            def crossover(self, a, b, rng):
                return operators.uniform_crossover(a, b, rng)

            def mutate(self, genome, rng):
                return operators.creep_mutation(
                    genome, np.asarray([4, 4, 4]), rng, prob=0.5
                )

        problem = BatchProblem()
        with EvaluationService(executor="thread", workers=2) as service:
            NSGA2(problem, Nsga2Config(population=6, generations=2), rng=0,
                  service=service).run()
        assert problem.batch_calls > 0  # override honored despite the service

    def test_nsga2_service_matches_serial(self, static_evaluator):
        from repro.arch.space import BackboneSpace
        from repro.search.ooe import _BackboneProblem

        problem = _BackboneProblem(BackboneSpace(), static_evaluator)
        config = Nsga2Config(population=8, generations=3)
        serial = NSGA2(problem, config, rng=3).run()
        with EvaluationService(executor="thread", workers=4) as service:
            parallel = NSGA2(problem, config, rng=3, service=service).run()
        for a, b in zip(serial, parallel):
            assert a.key() == b.key()
            np.testing.assert_array_equal(a.objectives, b.objectives)

    def test_parallel_workers_bit_identical_pareto(self):
        serial = HadasSearch(_tiny_config()).run()
        search = HadasSearch(_tiny_config(workers=4, executor="thread"))
        parallel = search.run()
        search.close()
        assert _pareto_bytes(serial) == _pareto_bytes(parallel)

    def test_process_executor_bit_identical_pareto(self):
        serial = HadasSearch(_tiny_config()).run()
        search = HadasSearch(_tiny_config(workers=4, executor="process"))
        parallel = search.run()
        search.close()
        assert _pareto_bytes(serial) == _pareto_bytes(parallel)

    def test_auto_executor_bit_identical_pareto(self):
        # auto above one worker runs the codec-backed batches on processes.
        serial = HadasSearch(_tiny_config()).run()
        search = HadasSearch(_tiny_config(workers=2, executor="auto"))
        parallel = search.run()
        search.close()
        assert _pareto_bytes(serial) == _pareto_bytes(parallel)


class TestPersistentCacheInSearch:
    def test_warm_rerun_does_zero_static_measurements(self, tmp_path):
        cold = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        cold_result = cold.run()
        assert cold.static_evaluator.num_measurements > 0

        warm = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        warm_result = warm.run()
        assert warm.static_evaluator.num_measurements == 0
        assert warm.cache.stats("static").misses == 0
        assert warm.cache.stats("inner").misses == 0
        assert _pareto_bytes(cold_result) == _pareto_bytes(warm_result)

    def test_cached_results_match_uncached(self, tmp_path):
        uncached = HadasSearch(_tiny_config()).run()
        cached = HadasSearch(_tiny_config(cache_dir=str(tmp_path))).run()
        assert _pareto_bytes(uncached) == _pareto_bytes(cached)

    def test_static_evaluator_version_bump_remeasures(self, tmp_path, monkeypatch):
        cold = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        cold.run()

        import repro.eval.static as static_mod

        monkeypatch.setattr(static_mod, "STATIC_EVALUATOR_VERSION", "999-test")
        bumped = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        bumped.run()
        assert bumped.static_evaluator.num_measurements > 0
        assert bumped.cache.stats("static").misses > 0

    def test_inner_engine_version_bump_reruns_ioe(self, tmp_path, monkeypatch):
        cold = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        cold.run()

        import repro.search.hadas as hadas_mod

        monkeypatch.setattr(hadas_mod, "INNER_ENGINE_VERSION", "999-test")
        bumped = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        bumped.run()
        assert bumped.cache.stats("inner").misses > 0

    def test_distinct_seeds_do_not_share_entries(self, tmp_path):
        first = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        first.run()
        other = HadasSearch(_tiny_config(seed=6, cache_dir=str(tmp_path)))
        other.run()
        assert other.static_evaluator.num_measurements > 0

    def test_distinct_spaces_or_anchors_do_not_share_entries(
        self, mini_space, tmp_path
    ):
        # Surrogate accuracy is calibrated against the space's bounds and
        # anchors, so the cache keys must diverge for an identical config
        # object when either differs.
        import dataclasses

        from repro.accuracy.surrogate import DEFAULT_ANCHORS, AccuracySurrogate
        from repro.arch.space import BackboneSpace
        from repro.eval.static import StaticEvaluator
        from repro.hardware.platform import get_platform

        assert BackboneSpace().fingerprint() == BackboneSpace().fingerprint()
        assert BackboneSpace().fingerprint() != mini_space.fingerprint()

        platform = get_platform("tx2-gpu")
        cache = ResultCache(tmp_path)
        space = BackboneSpace()
        default_eval = StaticEvaluator(
            platform, AccuracySurrogate(space, seed=0), seed=0, cache=cache
        )
        shifted_anchors = dataclasses.replace(
            DEFAULT_ANCHORS, a0_accuracy=DEFAULT_ANCHORS.a0_accuracy - 1.0
        )
        shifted_eval = StaticEvaluator(
            platform,
            AccuracySurrogate(space, anchors=shifted_anchors, seed=0),
            seed=0,
            cache=cache,
        )
        config = space.sample(np.random.default_rng(0))
        assert default_eval._cache_key(config) != shifted_eval._cache_key(config)

    def test_distinct_num_classes_do_not_share_entries(self, tmp_path):
        # config.key omits the classifier width, but head cost depends on it;
        # the persistent key must separate the two.
        first = HadasSearch(_tiny_config(cache_dir=str(tmp_path)))
        first.run()
        other = HadasSearch(_tiny_config(num_classes=10, cache_dir=str(tmp_path)))
        other.run()
        assert other.static_evaluator.num_measurements > 0


class TestOracleColumnCache:
    """Oracle correctness columns persist per column, platform-independent."""

    def _run_inner(self, platform, config, surrogate, cache, seed=0):
        from repro.eval.static import StaticEvaluator
        from repro.search.ioe import InnerEngine
        from repro.search.nsga2 import Nsga2Config

        evaluator = StaticEvaluator(platform, surrogate, seed=seed, cache=cache)
        return InnerEngine(
            config=config,
            static_evaluator=evaluator,
            backbone_accuracy_fraction=surrogate.accuracy_fraction(config),
            nsga=Nsga2Config(population=6, generations=2),
            oracle_samples=256,
            seed=seed,
            cache=cache,
        ).run()

    def test_dvfs_grid_only_change_warm_starts_columns(
        self, space, surrogate, tx2_gpu, tmp_path
    ):
        cache = ResultCache(tmp_path)
        config = space.sample(np.random.default_rng(2))
        cold = self._run_inner(tx2_gpu, config, surrogate, cache)
        cold_puts, cold_hits = cache.stats("oracle").puts, cache.stats("oracle").hits
        assert cold_puts > 0
        assert cold_hits == 0

        # Hardware-side-only change: trim the DVFS grid (different name so
        # the hardware-keyed namespaces do not collide).  Oracle columns are
        # keyed purely on the accuracy side, so they must warm-start.
        trimmed = tx2_gpu.with_overrides(
            name="tx2-gpu-trimmed", core_freqs_ghz=tx2_gpu.core_freqs_ghz[::2]
        )
        warm = self._run_inner(trimmed, config, surrogate, cache)
        warm_stats = cache.stats("oracle")
        assert warm_stats.hits > cold_hits
        assert warm_stats.hit_rate > 0.0
        # The change is real: the trimmed grid explores a different (X, F)
        # landscape, while the shared columns keep accuracy semantics fixed.
        assert cold.backbone_key == warm.backbone_key

    def test_column_roundtrip_is_bit_identical(self, tmp_path):
        from repro.accuracy.exit_model import BackboneExitOracle

        plain = BackboneExitOracle("bb", 12, 0.7, n_samples=128, seed=3)
        cache = ResultCache(tmp_path)
        writer = BackboneExitOracle("bb", 12, 0.7, n_samples=128, seed=3, cache=cache)
        reader = BackboneExitOracle("bb", 12, 0.7, n_samples=128, seed=3, cache=cache)
        for position in (5, 9, 12):
            np.testing.assert_array_equal(
                plain.exit_column(position), writer.exit_column(position)
            )
            np.testing.assert_array_equal(
                writer.exit_column(position), reader.exit_column(position)
            )
        assert cache.stats("oracle").hits >= 3  # reader hit the packed entries
        np.testing.assert_array_equal(plain.final_column(), reader.final_column())


class TestCacheNamespaceFiltering:
    """`repro cache --namespace`: scoped stats/clear/prune."""

    def _seeded(self, tmp_path) -> ResultCache:
        cache = ResultCache(tmp_path)
        cache.put(cache.key("static", b=1), {"x": 1})
        cache.put(cache.key("static", b=2), {"x": 2})
        cache.put(cache.key("serving", cell=1), {"y": 1})
        return cache

    def test_clear_namespace_leaves_others(self, tmp_path):
        cache = self._seeded(tmp_path)
        assert cache.clear(namespace="serving") == 1
        stats = cache.disk_stats()
        assert "serving" not in stats["namespaces"]
        assert stats["namespaces"]["static"]["entries"] == 2
        assert cache.get(cache.key("static", b=1)) == {"x": 1}
        # Index rewritten to survivors only.
        assert len(cache.index_entries()) == 2

    def test_clear_unknown_namespace_is_a_noop(self, tmp_path):
        cache = self._seeded(tmp_path)
        assert cache.clear(namespace="fleet") == 0
        assert cache.disk_stats()["entries"] == 3

    def test_prune_scoped_to_namespace(self, tmp_path):
        old = ResultCache(tmp_path, version="0")
        old.put(old.key("static", b=1), {"x": "old"})
        old.put(old.key("serving", cell=1), {"y": "old"})
        cache = self._seeded(tmp_path)
        # Only the stale *serving* entry goes; the stale static one stays.
        assert cache.prune(namespace="serving") == 1
        entries = cache.index_entries()
        versions = {
            (record["namespace"], record["version"]) for record in entries.values()
        }
        assert ("static", "0") in versions
        assert ("serving", "0") not in versions
        assert ("serving", str(cache.version)) in versions

    def test_prune_namespace_skips_orphan_sweep(self, tmp_path):
        cache = self._seeded(tmp_path)
        orphan = tmp_path / "deadbeef.json"
        orphan.write_text("{}")
        assert cache.prune(namespace="static", orphans=True, orphan_min_age_s=0.0) == 0
        assert orphan.exists()  # unindexed files carry no namespace to match

    def test_cli_namespace_stats_and_clear(self, tmp_path, capsys):
        from repro.engine.cli import main as cache_main

        self._seeded(tmp_path)
        assert cache_main(["stats", "--cache-dir", str(tmp_path), "--namespace", "static"]) == 0
        out = capsys.readouterr().out
        assert "namespace static" in out and "2 entries" in out
        assert cache_main(["clear", "--cache-dir", str(tmp_path), "--namespace", "static"]) == 0
        assert "removed 2 files" in capsys.readouterr().out
        assert set(ResultCache(tmp_path).disk_stats()["namespaces"]) == {"serving"}


class TestConfigValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            HadasConfig(workers=0)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ValueError):
            HadasConfig(executor="quantum")

    def test_injected_service_adopts_its_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        with EvaluationService(cache=cache) as service:
            search = HadasSearch(_tiny_config(), service=service)
            assert search.cache is cache
            matching = HadasSearch(
                _tiny_config(cache_dir=str(tmp_path)), service=service
            )
            assert matching.cache is cache

    def test_injected_service_engine_knob_conflict_raises(self, tmp_path):
        with EvaluationService(executor="thread", workers=4) as service:
            with pytest.raises(ValueError, match="workers"):
                HadasSearch(_tiny_config(workers=4), service=service)

    def test_injected_service_cache_conflict_raises(self, tmp_path):
        with EvaluationService(cache=ResultCache(tmp_path / "a")) as service:
            with pytest.raises(ValueError, match="conflicts"):
                HadasSearch(_tiny_config(cache_dir=str(tmp_path / "b")), service=service)
        with EvaluationService() as bare:
            with pytest.raises(ValueError, match="conflicts"):
                HadasSearch(_tiny_config(cache_dir=str(tmp_path / "c")), service=bare)


class TestRandomSearchBudget:
    def test_repeated_run_is_a_noop(self, static_evaluator):
        from repro.arch.space import BackboneSpace
        from repro.search.ooe import _BackboneProblem
        from repro.search.random_search import RandomSearch

        problem = _BackboneProblem(BackboneSpace(), static_evaluator)
        search = RandomSearch(problem, budget=8, rng=3)
        first = search.run()
        second = search.run()
        assert len(first) == len(second) == 8
        assert search.num_evaluations == 8


class TestEmptyArchiveGuidance:
    def test_selected_model_raises_runtime_error(self, space, surrogate, static_evaluator):
        result = HadasResult(
            config=HadasConfig(),
            outer=OuterResult(
                static_archive=ParetoArchive(), dynamic_archive=ParetoArchive()
            ),
            space=space,
            surrogate=surrogate,
            static_evaluator=static_evaluator,
        )
        assert result.top_models(2) == []
        with pytest.raises(RuntimeError, match="dynamic archive is empty"):
            result.selected_model()


class TestCacheIndexAndPrune:
    """The index sidecar behind `repro cache` stats/prune."""

    def test_put_indexes_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("static", backbone="b1")
        cache.put(key, {"x": 1})
        entries = cache.index_entries()
        assert entries[key.digest]["namespace"] == "static"
        assert entries[key.digest]["version"] == str(cache.version)

    def test_disk_stats_breakdown(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key("static", b=1), {"x": 1})
        cache.put(cache.key("inner", b=2), {"y": 2})
        stats = cache.disk_stats()
        assert stats["entries"] == 2
        assert stats["bytes"] > 0
        assert stats["namespaces"]["static"]["entries"] == 1
        assert stats["namespaces"]["inner"]["entries"] == 1
        assert stats["versions"][str(cache.version)] == 2
        assert stats["unindexed"] == 0

    def test_prune_removes_only_stale_versions(self, tmp_path):
        old = ResultCache(tmp_path, version="0")
        old_key = old.key("static", b=1)
        old.put(old_key, {"x": "old"})
        cur = ResultCache(tmp_path)
        cur_key = cur.key("static", b=1)
        cur.put(cur_key, {"x": "new"})
        assert old_key.digest != cur_key.digest  # version is in the address
        removed = cur.prune()
        assert removed == 1
        assert cur.get(cur_key) == {"x": "new"}
        assert not cur.contains(old_key)
        # Index rewritten to survivors only.
        assert set(cur.index_entries()) == {cur_key.digest}

    def test_prune_keeps_unindexed_unless_asked(self, tmp_path):
        cache = ResultCache(tmp_path)
        orphan = tmp_path / "deadbeef.json"
        orphan.write_text("{}")
        assert cache.prune() == 0
        assert orphan.exists()
        assert cache.disk_stats()["unindexed"] == 1
        # Fresh files are protected from the orphan sweep (racing-writer
        # guard); an aged orphan is collected.
        assert cache.prune(orphans=True) == 0
        assert orphan.exists()
        assert cache.prune(orphans=True, orphan_min_age_s=0.0) == 1
        assert not orphan.exists()

    def test_corrupt_index_lines_skipped(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("static", b=1)
        cache.put(key, {"x": 1})
        with (tmp_path / "index.jsonl").open("a") as handle:
            handle.write("not json at all\n")
            handle.write('{"no": "digest"}\n')
        assert set(cache.index_entries()) == {key.digest}

    def test_clear_removes_index(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(cache.key("static", b=1), {"x": 1})
        cache.clear()
        assert not (tmp_path / "index.jsonl").exists()
        assert cache.index_entries() == {}

    def test_stats_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = cache.disk_stats()
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
        assert stats["unindexed"] == 0
        assert stats["namespaces"] == {}
        assert stats["versions"] == {}
        assert len(cache) == 0
        assert cache.prune() == 0
        assert cache.stats().hit_rate == 0.0

    def test_prune_survives_racing_writer(self, tmp_path, monkeypatch):
        """An entry PUT while prune is sweeping must survive the index rewrite.

        The race window: prune snapshots the index, deletes stale files, then
        rewrites the index.  A concurrent writer (stubbed here by hooking the
        first ``index_entries`` call) lands a brand-new entry in that window —
        prune's post-deletion re-read must fold it into the rewritten index.
        """
        old = ResultCache(tmp_path, version="0")
        old.put(old.key("static", b=1), {"x": "old"})
        cache = ResultCache(tmp_path)
        racer = ResultCache(tmp_path)  # the concurrent writer
        raced_key = racer.key("static", b="raced")

        real_index_entries = ResultCache.index_entries
        fired = {"done": False}

        def racing_index_entries(self):
            snapshot = real_index_entries(self)
            if not fired["done"]:
                fired["done"] = True
                racer.put(raced_key, {"x": "raced"})  # lands inside the window
            return snapshot

        monkeypatch.setattr(ResultCache, "index_entries", racing_index_entries)
        removed = cache.prune()
        monkeypatch.undo()
        assert removed == 1  # only the stale version-0 entry
        assert cache.contains(raced_key)
        assert raced_key.digest in cache.index_entries()
        assert cache.get(raced_key) == {"x": "raced"}

    def test_truncated_index_line_recovers(self, tmp_path):
        """A torn append (hard kill mid-write) must not poison the index."""
        cache = ResultCache(tmp_path)
        first = cache.key("static", b=1)
        cache.put(first, {"x": 1})
        index = tmp_path / "index.jsonl"
        # Simulate a torn final line: a second put whose index record was cut.
        second = cache.key("static", b=2)
        cache.put(second, {"x": 2})
        content = index.read_text().splitlines()
        index.write_text(content[0] + "\n" + content[1][: len(content[1]) // 2])
        entries = cache.index_entries()
        assert first.digest in entries
        assert second.digest not in entries  # torn line skipped, not fatal
        # The entry file itself is intact: reads hit, and stats count it as
        # unindexed rather than losing it.
        assert cache.get(second) == {"x": 2}
        assert cache.disk_stats()["unindexed"] == 1
        # Re-putting restores the index line.
        cache.put(second, {"x": 2})
        assert second.digest in cache.index_entries()

    def test_index_last_record_wins(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("static", b=1)
        cache.put(key, {"x": 1})
        cache.put(key, {"x": 2})  # idempotent overwrite appends a second line
        entries = cache.index_entries()
        assert entries[key.digest]["version"] == str(cache.version)
        assert len(entries) == 1
