"""Shared fixtures for the test suite.

Heavyweight objects (platforms, spaces, evaluators) are session-scoped;
stochastic fixtures are seeded so every test is reproducible in isolation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy.surrogate import AccuracySurrogate
from repro.arch.space import BackboneSpace, miniature_space
from repro.baselines.attentivenas import attentivenas_models
from repro.eval.static import StaticEvaluator
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.platform import get_platform


@pytest.fixture(scope="session")
def space() -> BackboneSpace:
    return BackboneSpace()


@pytest.fixture(scope="session")
def mini_space():
    return miniature_space(num_classes=8)


@pytest.fixture(scope="session")
def tx2_gpu():
    return get_platform("tx2-gpu")


@pytest.fixture(scope="session")
def tx2_dvfs(tx2_gpu) -> DvfsSpace:
    return DvfsSpace(tx2_gpu)


@pytest.fixture(scope="session")
def surrogate(space) -> AccuracySurrogate:
    return AccuracySurrogate(space, seed=0)


@pytest.fixture(scope="session")
def static_evaluator(tx2_gpu, surrogate) -> StaticEvaluator:
    return StaticEvaluator(tx2_gpu, surrogate, seed=0)


@pytest.fixture(scope="session")
def baselines():
    return attentivenas_models()


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def numeric_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued fn at x."""
    grad = np.zeros_like(x, dtype=float)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        plus = x.copy()
        plus[idx] += eps
        minus = x.copy()
        minus[idx] -= eps
        grad[idx] = (fn(plus) - fn(minus)) / (2 * eps)
    return grad


@pytest.fixture(scope="session")
def gradcheck():
    """Return a helper asserting autograd matches finite differences."""
    from repro.nn.tensor import Tensor

    def check(build_output, x: np.ndarray, atol: float = 1e-6) -> None:
        tensor = Tensor(x.copy(), requires_grad=True)
        out = build_output(tensor)
        loss = (out * out).sum()
        loss.backward()
        analytic = tensor.grad.copy()

        def scalar(arr: np.ndarray) -> float:
            value = build_output(Tensor(arr))
            return float((value.data ** 2).sum())

        numeric = numeric_gradient(scalar, x)
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-4)

    return check
