"""Cross-cutting property-based tests on the physical models.

These pin down the *laws* the search depends on — monotonicities, bounds
and consistency relations that must hold over the whole input space, not
just at hand-picked points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cost import estimate_cost
from repro.arch.space import BackboneSpace
from repro.accuracy.exit_model import BackboneExitOracle, ExitCapabilityModel
from repro.accuracy.surrogate import AccuracySurrogate
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import get_platform

SPACE = BackboneSpace()
SURROGATE = AccuracySurrogate(SPACE, seed=0)
PLATFORM = get_platform("tx2-gpu")
DVFS = DvfsSpace(PLATFORM)
ENERGY = EnergyModel(PLATFORM)


@st.composite
def space_genomes(draw):
    bounds = SPACE.gene_bounds()
    return np.asarray([draw(st.integers(0, int(b) - 1)) for b in bounds], dtype=np.int64)


class TestCostLaws:
    @settings(max_examples=25, deadline=None)
    @given(space_genomes())
    def test_costs_positive_and_finite(self, genome):
        cost = estimate_cost(SPACE.decode(genome))
        assert np.isfinite(cost.total_macs) and cost.total_macs > 0
        assert np.isfinite(cost.total_params) and cost.total_params > 0
        assert cost.total_traffic > 0

    @settings(max_examples=20, deadline=None)
    @given(space_genomes())
    def test_deeper_variant_costs_more(self, genome):
        """Raising any stage's depth index strictly raises MACs."""
        depth_gene = 3  # stage 0 depth gene
        bounds = SPACE.gene_bounds()
        if genome[depth_gene] + 1 >= bounds[depth_gene]:
            genome = genome.copy()
            genome[depth_gene] = 0
        deeper = genome.copy()
        deeper[depth_gene] += 1
        base = estimate_cost(SPACE.decode(genome)).total_macs
        more = estimate_cost(SPACE.decode(deeper)).total_macs
        assert more > base

    @settings(max_examples=20, deadline=None)
    @given(space_genomes())
    def test_prefix_macs_bounded_by_total(self, genome):
        config = SPACE.decode(genome)
        cost = estimate_cost(config)
        last = config.total_mbconv_layers
        assert cost.prefix_macs(last) < cost.total_macs


class TestHardwareLaws:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 12), st.integers(0, 10), space_genomes())
    def test_energy_latency_positive_everywhere(self, core, emc, genome):
        cost = estimate_cost(SPACE.decode(genome))
        report = ENERGY.network_report(cost, DVFS.decode(core, emc))
        assert report.energy_j > 0 and report.latency_s > 0
        assert report.average_power_w > 0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 11), st.integers(0, 10))
    def test_latency_monotone_in_core_freq(self, core, emc):
        """At fixed EMC, raising the core clock never slows the network."""
        cost = estimate_cost(SPACE.decode(SPACE.min_genome()))
        slow = ENERGY.latency.network_latency_s(cost, DVFS.decode(core, emc))
        fast = ENERGY.latency.network_latency_s(cost, DVFS.decode(core + 1, emc))
        assert fast <= slow + 1e-12

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 12), st.integers(0, 9))
    def test_latency_monotone_in_emc_freq(self, core, emc):
        cost = estimate_cost(SPACE.decode(SPACE.min_genome()))
        slow = ENERGY.latency.network_latency_s(cost, DVFS.decode(core, emc))
        fast = ENERGY.latency.network_latency_s(cost, DVFS.decode(core, emc + 1))
        assert fast <= slow + 1e-12

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 12), st.integers(0, 10))
    def test_power_within_device_envelope(self, core, emc):
        cost = estimate_cost(SPACE.decode(SPACE.max_genome()))
        report = ENERGY.network_report(cost, DVFS.decode(core, emc))
        assert 0.5 < report.average_power_w < 25.0  # Jetson-physical band


class TestSurrogateLaws:
    @settings(max_examples=25, deadline=None)
    @given(space_genomes())
    def test_accuracy_in_plausible_band(self, genome):
        acc = SURROGATE.accuracy(SPACE.decode(genome))
        assert 75.0 < acc < 95.0

    @settings(max_examples=20, deadline=None)
    @given(space_genomes())
    def test_capacity_monotone_under_gene_increase(self, genome):
        """Raising the resolution gene never lowers the capacity score."""
        bounds = SPACE.gene_bounds()
        if genome[0] + 1 >= bounds[0]:
            genome = genome.copy()
            genome[0] = 0
        bigger = genome.copy()
        bigger[0] += 1
        assert SURROGATE.capacity_score(SPACE.decode(bigger)) >= SURROGATE.capacity_score(
            SPACE.decode(genome)
        )


class TestOracleLaws:
    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(0.55, 0.95),
        st.integers(12, 36),
        st.integers(0, 1000),
    )
    def test_capability_ordering_preserved(self, acc, layers, seed):
        """Deeper exits never have lower N_i, for any backbone/seed."""
        oracle = BackboneExitOracle(f"p{seed}", layers, acc, seed=seed, n_samples=512)
        values = [oracle.n_i(p) for p in range(MIN_EXIT_POSITION, layers, 3)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_adding_an_exit_never_lowers_union(self, seed):
        oracle = BackboneExitOracle(f"u{seed}", 20, 0.85, seed=seed, n_samples=512)
        small = oracle.evaluate_placement(ExitPlacement(20, (8, 14)))
        large = oracle.evaluate_placement(ExitPlacement(20, (8, 11, 14)))
        assert large.dynamic_accuracy >= small.dynamic_accuracy - 1e-12

    @settings(max_examples=10, deadline=None)
    @given(st.floats(0.05, 0.3), st.floats(0.05, 0.5))
    def test_correlation_length_controls_redundancy(self, short, long_extra):
        """A longer correlation length makes adjacent exits more redundant
        (their union adds less)."""
        long = short + long_extra
        def union_gain(length):
            model = ExitCapabilityModel(correlation_length=length)
            oracle = BackboneExitOracle("corr", 20, 0.85, model=model,
                                        seed=3, n_samples=2048)
            stats = oracle.evaluate_placement(ExitPlacement(20, (9, 10, 11)))
            return stats.dynamic_accuracy - stats.final_accuracy

        assert union_gain(long) <= union_gain(short) + 0.02


class TestEndToEndConsistency:
    def test_static_vs_dynamic_energy_normalisation(self, static_evaluator, surrogate):
        """The eq. 6 normaliser E_b equals the static evaluation's energy."""
        from repro.baselines.attentivenas import attentivenas_model
        from repro.search.ioe import InnerEngine
        from repro.search.nsga2 import Nsga2Config

        backbone = attentivenas_model("a2")
        static = static_evaluator.evaluate(backbone)
        engine = InnerEngine(
            backbone, static_evaluator, surrogate.accuracy_fraction(backbone),
            nsga=Nsga2Config(population=4, generations=2), seed=0,
        )
        assert engine.evaluator.baseline_energy_j == pytest.approx(static.energy_j)
        assert engine.evaluator.baseline_latency_s == pytest.approx(static.latency_s)


# --------------------------------------------------------------- serving laws
class TestTraceGeneratorLaws:
    """Laws every load generator must satisfy over its whole input space."""

    PATTERNS = ("poisson", "bursty", "diurnal", "replay")

    @settings(max_examples=10, deadline=None)
    @given(
        st.sampled_from(PATTERNS),
        st.floats(20.0, 200.0),
        st.floats(5.0, 30.0),
        st.integers(0, 2**31 - 1),
    )
    def test_sorted_and_bounded(self, pattern, rate_hz, duration_s, seed):
        from repro.serving.workload import make_trace

        trace = make_trace(pattern, rate_hz, duration_s, seed=seed)
        times = trace.arrival_s
        assert np.all(np.diff(times) >= 0)
        assert len(times) == 0 or (times[0] >= 0.0 and times[-1] < duration_s)
        assert trace.duration_s == duration_s
        assert np.all((trace.difficulty >= 0.0) & (trace.difficulty <= 1.0))

    @settings(max_examples=6, deadline=None)
    @given(st.sampled_from(PATTERNS), st.integers(0, 2**31 - 1))
    def test_mean_rate_near_nominal(self, pattern, seed):
        from repro.serving.workload import make_trace

        rate_hz, duration_s = 100.0, 120.0
        trace = make_trace(pattern, rate_hz, duration_s, seed=seed)
        # Poisson counting noise is ~1% here, but bursty/diurnal add
        # dwell/cycle-level variance on top — allow a generous ±25%.
        assert trace.num_requests == pytest.approx(rate_hz * duration_s, rel=0.25)

    @settings(max_examples=8, deadline=None)
    @given(
        st.sampled_from(PATTERNS),
        st.integers(0, 2**31 - 1),
        st.floats(0.0, 1.0),
    )
    def test_per_seed_determinism(self, pattern, seed, critical_fraction):
        from repro.serving.workload import make_trace

        a = make_trace(pattern, 60.0, 8.0, seed=seed, critical_fraction=critical_fraction)
        b = make_trace(pattern, 60.0, 8.0, seed=seed, critical_fraction=critical_fraction)
        assert np.array_equal(a.arrival_s, b.arrival_s)
        assert np.array_equal(a.difficulty, b.difficulty)
        assert np.array_equal(a.slo_class, b.slo_class)

    @settings(max_examples=8, deadline=None)
    @given(st.sampled_from(PATTERNS), st.floats(0.0, 1.0), st.integers(0, 2**31 - 1))
    def test_critical_fraction_tags_about_that_share(self, pattern, fraction, seed):
        from repro.serving.workload import LATENCY_CRITICAL, make_trace

        trace = make_trace(pattern, 80.0, 20.0, seed=seed, critical_fraction=fraction)
        if trace.num_requests == 0:
            return
        share = float(np.mean(trace.slo_class == LATENCY_CRITICAL))
        assert share == pytest.approx(fraction, abs=0.08)


class TestBatcherLaws:
    """The two batcher implementations agree and satisfy dispatch laws."""

    @staticmethod
    def _drain_array(trace, policy, service_s):
        from repro.serving.batcher import ArrayBatcher

        batcher = ArrayBatcher(trace, policy)
        t_free, out = 0.0, []
        while (formed := batcher.next_batch(t_free)) is not None:
            start, indices = formed
            out.append((start, list(indices)))
            t_free = start + service_s
        return out

    @staticmethod
    def _drain_micro(trace, policy, service_s):
        from repro.serving.batcher import MicroBatcher

        batcher = MicroBatcher(trace, policy)
        t_free, out = 0.0, []
        while (formed := batcher.next_batch(t_free)) is not None:
            start, batch = formed
            out.append((start, [r.index for r in batch]))
            t_free = start + service_s
        return out

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(1, 8),
        st.floats(0.001, 0.05),
        st.floats(0.001, 0.05),
    )
    def test_array_batcher_matches_micro_batcher(
        self, seed, max_batch, timeout_s, service_s
    ):
        from repro.serving.batcher import BatchPolicy
        from repro.serving.workload import make_trace

        trace = make_trace("bursty", 80.0, 6.0, seed=seed)
        policy = BatchPolicy(max_batch=max_batch, timeout_s=timeout_s)
        assert self._drain_array(trace, policy, service_s) == self._drain_micro(
            trace, policy, service_s
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 8), st.floats(0.001, 0.05))
    def test_fifo_each_request_dispatched_once_after_arrival(
        self, seed, max_batch, timeout_s
    ):
        from repro.serving.batcher import BatchPolicy
        from repro.serving.workload import make_trace

        trace = make_trace("poisson", 60.0, 6.0, seed=seed)
        policy = BatchPolicy(max_batch=max_batch, timeout_s=timeout_s)
        batches = self._drain_array(trace, policy, service_s=0.01)
        dispatched = [i for _, indices in batches for i in indices]
        # FIFO and exactly-once: the concatenation is 0..n-1 in order.
        assert dispatched == list(range(trace.num_requests))
        for start, indices in batches:
            assert len(indices) <= max_batch
            # no batch starts before its last member arrives
            assert start >= trace.arrival_s[indices[-1]]


class TestRouterBlockLaws:
    """The vectorized route_block kernels reproduce the scalar route() loop.

    The scalar side steps request-by-request exactly like the reference
    fleet engine: route, then the live queue-depth admission check, then
    the depth increment later routing decisions observe.  The block side
    routes the whole arrival block through one route_block call against a
    BlockLaneState.  Assignments, admissions, and final depths must agree
    float-for-float — including single-lane fleets, equal-backlog ties,
    and all-critical blocks.
    """

    class _Lane:
        def __init__(self, index, capacity, t_free, depth):
            self.index = index
            self.reference_capacity_rps = capacity
            self.t_free = t_free
            self.queue_depth = depth

        def estimated_wait_s(self, now_s):
            residual = self.t_free - now_s
            return (residual if residual > 0.0 else 0.0) + (
                self.queue_depth / self.reference_capacity_rps
            )

    @staticmethod
    def _scalar(router, lanes, difficulty, slo_class, arrival, max_queue, bypass):
        from repro.serving.workload import LATENCY_CRITICAL

        assignments, admitted = [], []
        for m, now in enumerate(arrival):
            chosen = router.route(difficulty[m], slo_class[m], now, lanes)
            critical = slo_class[m] == LATENCY_CRITICAL
            lane = lanes[chosen]
            ok = (
                max_queue is None
                or lane.queue_depth < max_queue
                or (bypass and critical)
            )
            if ok:
                lane.queue_depth += 1
            assignments.append(chosen)
            admitted.append(ok)
        return assignments, admitted

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_route_block_matches_scalar_loop(self, data):
        from repro.serving.router import BlockLaneState, ROUTER_NAMES, make_router
        from repro.serving.workload import BEST_EFFORT, LATENCY_CRITICAL

        name = data.draw(st.sampled_from(ROUTER_NAMES))
        num_lanes = data.draw(st.integers(1, 4))
        caps = data.draw(
            st.lists(
                st.sampled_from((5.0, 10.0, 25.0)),
                min_size=num_lanes,
                max_size=num_lanes,
            )
        )
        frees = data.draw(
            st.lists(st.floats(0.0, 0.2), min_size=num_lanes, max_size=num_lanes)
        )
        depths = data.draw(
            st.lists(st.integers(0, 10), min_size=num_lanes, max_size=num_lanes)
        )
        size = data.draw(st.integers(1, 16))
        gaps = data.draw(st.lists(st.floats(0.0, 0.02), min_size=size, max_size=size))
        arrival = []
        now = 0.0
        for gap in gaps:
            now += gap
            arrival.append(now)
        difficulty = data.draw(
            st.lists(st.floats(0.0, 1.0), min_size=size, max_size=size)
        )
        crit = data.draw(st.lists(st.booleans(), min_size=size, max_size=size))
        if data.draw(st.booleans()):
            crit = [True] * size  # all-critical block
        slo_class = [LATENCY_CRITICAL if c else BEST_EFFORT for c in crit]
        max_queue = data.draw(st.one_of(st.none(), st.integers(0, 12)))
        bypass = data.draw(st.booleans())

        def build():
            return [
                self._Lane(i, caps[i], frees[i], depths[i]) for i in range(num_lanes)
            ]

        scalar_lanes = build()
        block_lanes = build()
        scalar_router = make_router(name, scalar_lanes, slo_s=0.075)
        block_router = make_router(name, block_lanes, slo_s=0.075)

        expected = self._scalar(
            scalar_router, scalar_lanes, difficulty, slo_class, arrival,
            max_queue, bypass,
        )
        state = BlockLaneState(
            block_lanes, max_queue=max_queue, critical_bypass=bypass
        )
        state.begin_block()
        # The fleet loop hands the kernels None when the block carries no
        # latency-critical request; exercise that contract too.
        slo_arg = slo_class
        if not any(crit) and data.draw(st.booleans()):
            slo_arg = None
        assignments, admitted = block_router.route_block(
            difficulty, slo_arg, arrival, state
        )
        assert (list(assignments), list(admitted)) == expected
        assert state.depth == [lane.queue_depth for lane in scalar_lanes]
