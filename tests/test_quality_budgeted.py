"""IGD / knee-point metrics and the budgeted runtime controller."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.quality import inverted_generational_distance, knee_point
from repro.runtime.controller import BudgetedController, EntropyThresholdController


class TestIgd:
    def test_zero_when_covering(self):
        front = np.asarray([[0.0, 1.0], [1.0, 0.0]])
        assert inverted_generational_distance(front, front) == 0.0

    def test_known_distance(self):
        front = np.asarray([[0.0, 0.0]])
        reference = np.asarray([[3.0, 4.0], [0.0, 0.0]])
        assert inverted_generational_distance(front, reference) == pytest.approx(2.5)

    def test_empty_front_infinite(self):
        assert inverted_generational_distance(
            np.zeros((0, 2)), np.ones((3, 2))
        ) == float("inf")

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            inverted_generational_distance(np.zeros((2, 2)), np.zeros((2, 3)))

    @settings(max_examples=30, deadline=None)
    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 10), st.just(2)),
                      elements=st.floats(-3, 3)))
    def test_superset_never_worse(self, reference):
        """Adding points to a front can only lower (improve) IGD."""
        small = reference[: max(1, len(reference) // 2)]
        igd_small = inverted_generational_distance(small, reference)
        igd_full = inverted_generational_distance(reference, reference)
        assert igd_full <= igd_small + 1e-12


class TestKneePoint:
    def test_obvious_knee(self):
        # The middle point bulges far above the chord.
        points = np.asarray([[0.0, 1.0], [0.9, 0.9], [1.0, 0.0]])
        assert knee_point(points) == 1

    def test_single_point(self):
        assert knee_point(np.asarray([[0.5, 0.5]])) == 0

    def test_ignores_dominated_points(self):
        points = np.asarray([[0.0, 1.0], [0.9, 0.9], [1.0, 0.0], [0.1, 0.1]])
        assert knee_point(points) == 1

    def test_collinear_falls_back(self):
        points = np.asarray([[0.0, 1.0], [0.5, 0.5], [1.0, 0.0]])
        idx = knee_point(points)
        assert idx in (0, 1, 2)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            knee_point(np.zeros((3, 3)))

    def test_duplicate_objectives_front(self):
        points = np.asarray([[1.0, 1.0], [1.0, 1.0]])
        assert knee_point(points) in (0, 1)


def _calibration_stream(n=400, classes=6, exits=3, seed=0):
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=n)
    exit_logits = rng.normal(0, 1, size=(exits, n, classes))
    for i in range(exits):
        correct = rng.random(n) < 0.45 + 0.18 * i
        exit_logits[i, correct, labels[correct]] += 1.5 + i
    return exit_logits, labels


class TestBudgetedController:
    PATHS = np.asarray([0.05, 0.08, 0.12, 0.20])  # J per path, full last

    def test_budget_met_on_calibration_stream(self):
        exit_logits, _ = _calibration_stream()
        budget = 0.10
        controller = BudgetedController.calibrate(exit_logits, self.PATHS, budget)
        decisions = controller.decide(exit_logits)
        measured = self.PATHS[decisions].mean()
        assert measured <= budget + 1e-9
        assert controller.expected_energy_j <= budget + 1e-9

    def test_loose_budget_exits_little(self):
        exit_logits, _ = _calibration_stream()
        generous = BudgetedController.calibrate(exit_logits, self.PATHS, 0.19)
        tight = BudgetedController.calibrate(exit_logits, self.PATHS, 0.07)
        gen_dec = generous.decide(exit_logits)
        tight_dec = tight.decide(exit_logits)
        # Tighter budget forces earlier exits on average.
        assert tight_dec.mean() < gen_dec.mean() + 1e-9

    def test_unreachable_budget_rejected(self):
        exit_logits, _ = _calibration_stream()
        with pytest.raises(ValueError):
            BudgetedController.calibrate(exit_logits, self.PATHS, 0.01)

    def test_wrong_path_count(self):
        exit_logits, _ = _calibration_stream()
        with pytest.raises(ValueError):
            BudgetedController.calibrate(exit_logits, np.asarray([0.1, 0.2]), 0.15)

    def test_behaves_as_entropy_controller(self):
        exit_logits, _ = _calibration_stream()
        controller = BudgetedController.calibrate(exit_logits, self.PATHS, 0.12)
        twin = EntropyThresholdController(controller.thresholds, controller.num_exits)
        np.testing.assert_array_equal(
            controller.decide(exit_logits), twin.decide(exit_logits)
        )
