"""The online serving subsystem: workload, batcher, governor, simulator, CLI."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.engine.cache import ResultCache
from repro.hardware.energy import PathProfile, batched_execution
from repro.serving import (
    AdaptiveGovernor,
    BatchPolicy,
    GovernorObservation,
    MicroBatcher,
    ServingSpec,
    StaticPolicy,
    bursty_trace,
    diurnal_trace,
    flash_crowd_trace,
    get_scenario,
    make_trace,
    poisson_trace,
    replay_trace,
    run_serving_cell,
    static_config_for,
    sweep,
)
from repro.serving.harness import (
    build_serving_stack,
    build_trace_and_stream,
    cell_cache_key,
)
from repro.serving.scenarios import ThermalParams, ThermalState
from repro.serving.simulator import ServingSimulator
from repro.serving.telemetry import ServingReport
from repro.serving.workload import Request, Trace


@pytest.fixture(scope="module")
def stack():
    """One shared serving stack (the expensive build, ~1s)."""
    return build_serving_stack(ServingSpec(duration_s=6.0))


# --------------------------------------------------------------------- loads
class TestWorkload:
    def test_poisson_deterministic_and_sorted(self):
        a = poisson_trace(50.0, 5.0, seed=3)
        b = poisson_trace(50.0, 5.0, seed=3)
        assert a == b
        times = a.arrival_times()
        assert (np.diff(times) >= 0).all()
        assert times.min() >= 0 and times.max() < 5.0

    def test_poisson_seed_changes_trace(self):
        assert poisson_trace(50.0, 5.0, seed=3) != poisson_trace(50.0, 5.0, seed=4)

    @pytest.mark.parametrize("pattern", ["poisson", "bursty", "diurnal", "replay"])
    def test_mean_rate_near_nominal(self, pattern):
        trace = make_trace(pattern, rate_hz=80.0, duration_s=20.0, seed=5)
        assert trace.mean_rate_hz == pytest.approx(80.0, rel=0.25)

    def test_difficulties_in_unit_interval(self):
        trace = bursty_trace(40.0, 8.0, seed=1)
        difficulties = trace.difficulties()
        assert ((difficulties >= 0) & (difficulties <= 1)).all()

    def test_diurnal_rate_varies(self):
        trace = diurnal_trace(60.0, 20.0, seed=2, peak_to_trough=4.0, cycles=2.0)
        times = trace.arrival_times()
        counts = np.histogram(times, bins=10, range=(0, 20.0))[0]
        assert counts.max() > 1.8 * max(counts.min(), 1)

    def test_bursty_has_bursts(self):
        trace = bursty_trace(40.0, 20.0, seed=6)
        counts = np.histogram(trace.arrival_times(), bins=20, range=(0, 20.0))[0]
        assert counts.max() > 2 * max(counts.min(), 1)

    def test_replay_round_trip(self):
        source = flash_crowd_trace(50.0, 6.0, seed=9)
        replayed = replay_trace(source.arrival_times(), duration_s=6.0, seed=9)
        np.testing.assert_allclose(replayed.arrival_times(), source.arrival_times())

    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="unknown load pattern"):
            make_trace("sawtooth", 10.0, 1.0)


# ------------------------------------------------------------------- batcher
def _trace_from_times(times, duration):
    requests = tuple(
        Request(index=i, arrival_s=float(t), difficulty=0.5)
        for i, t in enumerate(times)
    )
    return Trace.from_requests("replay", requests, duration_s=duration)


class TestMicroBatcher:
    def test_full_batch_dispatches_at_fill_time(self):
        trace = _trace_from_times([0.0, 0.001, 0.002, 0.003], 1.0)
        batcher = MicroBatcher(trace, BatchPolicy(max_batch=4, timeout_s=0.1))
        start, batch = batcher.next_batch(0.0)
        assert len(batch) == 4
        assert start == pytest.approx(0.003)

    def test_timeout_dispatches_partial_batch(self):
        trace = _trace_from_times([0.0, 0.5], 1.0)
        batcher = MicroBatcher(trace, BatchPolicy(max_batch=4, timeout_s=0.01))
        start, batch = batcher.next_batch(0.0)
        assert [r.index for r in batch] == [0]
        assert start == pytest.approx(0.01)

    def test_opportunistic_fill_while_device_busy(self):
        trace = _trace_from_times([0.0, 0.2, 0.4], 1.0)
        batcher = MicroBatcher(trace, BatchPolicy(max_batch=4, timeout_s=0.01))
        start, batch = batcher.next_batch(0.5)  # device busy until 0.5
        assert [r.index for r in batch] == [0, 1, 2]
        assert start == pytest.approx(0.5)

    def test_fifo_order_and_exhaustion(self):
        trace = _trace_from_times(np.linspace(0, 0.9, 10), 1.0)
        batcher = MicroBatcher(trace, BatchPolicy(max_batch=3, timeout_s=0.05))
        seen = []
        t_free = 0.0
        while (formed := batcher.next_batch(t_free)) is not None:
            start, batch = formed
            seen.extend(r.index for r in batch)
            assert len(batch) <= 3
            t_free = start + 0.01
        assert seen == list(range(10))
        assert batcher.next_batch(t_free) is None

    def test_backlog_counts_undispatched_arrivals(self):
        trace = _trace_from_times([0.0, 0.1, 0.2, 5.0], 6.0)
        batcher = MicroBatcher(trace, BatchPolicy(max_batch=8, timeout_s=0.01))
        assert batcher.backlog_at(0.25) == 3
        assert batcher.backlog_at(5.5) == 4


# -------------------------------------------------------------- batch pricing
class TestBatchedExecution:
    def test_batch_of_one_matches_standalone(self):
        profile = PathProfile(0.01, 0.005, 0.2, 3.0)
        latency, energy = batched_execution([profile])
        assert latency == pytest.approx(profile.latency_s)
        assert energy == pytest.approx(profile.energy_j)

    def test_batching_amortizes_overhead(self):
        profile = PathProfile(0.01, 0.005, 0.2, 3.0)
        latency, energy = batched_execution([profile] * 4)
        assert latency == pytest.approx(4 * 0.01 + 0.005)
        assert latency < 4 * profile.latency_s
        assert energy < 4 * profile.energy_j

    def test_deepest_path_overhead_paid(self):
        shallow = PathProfile(0.01, 0.002, 0.1, 3.0)
        deep = PathProfile(0.03, 0.008, 0.5, 3.0)
        latency, _ = batched_execution([shallow, deep])
        assert latency == pytest.approx(0.01 + 0.03 + 0.008)

    def test_empty_batch(self):
        assert batched_execution([]) == (0.0, 0.0)

    def test_profile_consistent_with_composite_report(self, stack):
        from repro.hardware.dvfs import DvfsSpace

        evaluator = stack.evaluator
        dvfs = DvfsSpace(evaluator.energy_model.platform)
        for s in (dvfs.default_setting(), dvfs.decode(0, 0)):
            layers = list(evaluator.cost.layers)
            profile = evaluator.energy_model.path_profile(layers, s)
            report = evaluator.energy_model.composite_report(layers, s)
            assert profile.latency_s == pytest.approx(report.latency_s)
            assert profile.energy_j == pytest.approx(report.energy_j)


# ------------------------------------------------------------------- streams
class TestLogitsStream:
    def test_shapes_and_determinism(self, stack):
        difficulties = np.linspace(0, 1, 32)
        a = stack.synthesizer.synthesize(difficulties)
        b = stack.synthesizer.synthesize(difficulties)
        assert a.exit_logits.shape == (stack.placement.num_exits, 32, 10)
        assert a.final_logits.shape == (32, 10)
        np.testing.assert_array_equal(a.exit_logits, b.exit_logits)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_easy_requests_exit_earlier(self, stack):
        easy = stack.synthesizer.synthesize(np.full(200, 0.05))
        hard = stack.synthesizer.synthesize(np.full(200, 0.95))
        config = stack.ladder[0]
        controller = config.controller()
        easy_exits = controller.decide(easy.exit_logits)
        hard_exits = controller.decide(hard.exit_logits)
        assert easy_exits.mean() < hard_exits.mean()

    def test_calibration_differs_from_trace_stream(self, stack):
        calibration = stack.synthesizer.calibration_stream(64)
        trace_stream = stack.synthesizer.synthesize(np.full(64, 0.3))
        assert not np.array_equal(calibration.labels, trace_stream.labels)


# -------------------------------------------------------------------- ladder
class TestConfigLadder:
    def test_expectations_monotone_in_exit_rate(self, stack):
        perf = sorted(
            (c for c in stack.ladder if c.name.endswith("-perf")),
            key=lambda c: c.exit_rate,
        )
        energies = [c.expected_energy_j for c in perf]
        accuracies = [c.expected_accuracy for c in perf]
        capacities = [c.capacity_rps(stack.batch_policy) for c in perf]
        assert energies == sorted(energies, reverse=True)
        assert accuracies == sorted(accuracies, reverse=True)
        assert capacities == sorted(capacities)

    def test_perf_tier_fastest(self, stack):
        by_rate: dict[float, dict[str, float]] = {}
        for config in stack.ladder:
            tier = config.name.split("-", 1)[1]
            by_rate.setdefault(config.exit_rate, {})[tier] = config.expected_latency_s
        for tiers in by_rate.values():
            assert tiers["perf"] <= tiers["balanced"] <= tiers["eco"]

    def test_usage_sums_to_one(self, stack):
        for config in stack.ladder:
            assert sum(config.expected_usage) == pytest.approx(1.0)

    def test_static_choice_sustains_mean_rate(self, stack):
        config = static_config_for(
            stack.ladder, stack.rate_hz, 0.075, stack.batch_policy
        )
        assert config.capacity_rps(stack.batch_policy) >= stack.rate_hz

    def test_equilibrium_batch_grows_with_demand(self, stack):
        config = stack.static_config
        low = config.equilibrium_batch(1.0, stack.batch_policy)
        high = config.equilibrium_batch(1e6, stack.batch_policy)
        assert low <= high
        assert high == stack.batch_policy.max_batch


# ------------------------------------------------------------------ governor
def _obs(**overrides):
    base = dict(
        now_s=1.0,
        window_s=0.4,
        arrival_rate_hz=20.0,
        backlog=0,
        slo_s=0.075,
    )
    base.update(overrides)
    return GovernorObservation(**base)


class TestAdaptiveGovernor:
    def test_static_policy_is_constant(self, stack):
        policy = StaticPolicy(stack.static_config)
        assert policy.select(_obs()) is stack.static_config
        assert policy.select(_obs(arrival_rate_hz=1e6)) is stack.static_config

    def test_overload_escalates_capacity(self, stack):
        governor = AdaptiveGovernor(stack.ladder, stack.batch_policy)
        quiet = governor.select(_obs(arrival_rate_hz=5.0))
        rush = governor.select(_obs(arrival_rate_hz=1e5, backlog=500))
        capacity = {c.name: c.capacity_rps(stack.batch_policy) for c in stack.ladder}
        assert capacity[rush.name] == max(capacity.values())
        assert quiet.expected_accuracy >= rush.expected_accuracy

    def test_power_cap_restricts_selection(self, stack):
        governor = AdaptiveGovernor(stack.ladder, stack.batch_policy)
        cap = min(c.expected_power_w for c in stack.ladder) * 1.05
        chosen = governor.select(_obs(power_cap_w=cap))
        assert chosen.expected_power_w <= cap

    def test_energy_cap_restricts_selection(self, stack):
        governor = AdaptiveGovernor(stack.ladder, stack.batch_policy)
        cap = sorted(c.expected_energy_j for c in stack.ladder)[2]
        chosen = governor.select(_obs(energy_cap_j=cap))
        assert chosen.expected_energy_j <= cap

    def test_impossible_caps_fall_back_to_cheapest(self, stack):
        governor = AdaptiveGovernor(stack.ladder, stack.batch_policy)
        chosen = governor.select(_obs(power_cap_w=1e-6, energy_cap_j=1e-9))
        assert chosen.expected_energy_j == min(
            c.expected_energy_j for c in stack.ladder
        )

    def test_spike_registers_immediately(self, stack):
        governor = AdaptiveGovernor(stack.ladder, stack.batch_policy)
        governor.select(_obs(arrival_rate_hz=5.0))
        spike = governor.select(_obs(arrival_rate_hz=1e5))
        capacity = {c.name: c.capacity_rps(stack.batch_policy) for c in stack.ladder}
        assert capacity[spike.name] == max(capacity.values())


# ----------------------------------------------------------------- scenarios
class TestScenarios:
    def test_unknown_scenario(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("underwater")

    def test_thermal_steady_state_overshoots_cap(self):
        params = ThermalParams()
        state = ThermalState(params, max_power_w=10.0)
        for _ in range(400):
            state.advance(10.0, 0.5)
        assert state.temperature_c > params.cap_c
        assert state.throttled

    def test_idle_cools_to_ambient(self):
        params = ThermalParams()
        state = ThermalState(params, max_power_w=10.0)
        state.advance(10.0, 30.0)
        state.advance(0.0, 120.0)
        assert state.temperature_c == pytest.approx(params.ambient_c, abs=0.5)

    def test_sustainable_power_holds_cap(self):
        params = ThermalParams()
        state = ThermalState(params, max_power_w=10.0)
        sustainable = params.sustainable_power_w(10.0)
        for _ in range(400):
            state.advance(sustainable, 0.5)
        assert state.temperature_c == pytest.approx(params.cap_c, abs=0.1)
        assert not state.throttled  # asymptotic from below


# ----------------------------------------------------------------- simulator
class TestServingSimulator:
    @pytest.fixture(scope="class")
    def run_pair(self, stack):
        trace, stream = build_trace_and_stream(stack)
        reports = {}
        for name, policy in (
            ("static", StaticPolicy(stack.static_config)),
            ("adaptive", AdaptiveGovernor(stack.ladder, stack.batch_policy)),
        ):
            simulator = ServingSimulator(
                evaluator=stack.evaluator,
                placement=stack.placement,
                policy=policy,
                ladder=stack.ladder,
                scenario=stack.scenario,
                slo_s=stack.spec.slo_ms / 1e3,
                batch_policy=stack.batch_policy,
            )
            reports[name] = simulator.run(trace, stream)
        return trace, reports

    def test_report_consistency(self, run_pair):
        trace, reports = run_pair
        for report in reports.values():
            assert report.num_requests == trace.num_requests
            assert sum(report.exit_usage) == pytest.approx(1.0)
            assert 0 <= report.deadline_miss_rate <= 1
            assert 0 <= report.accuracy <= 1
            assert report.latency_ms_p50 <= report.latency_ms_p95 <= report.latency_ms_p99
            assert report.energy_per_request_j > 0
            assert report.mean_batch_size >= 1.0
            assert report.num_batches * report.mean_batch_size == pytest.approx(
                report.num_requests
            )

    def test_deterministic_at_fixed_seed(self, stack):
        a = run_serving_cell(ServingSpec(pattern="diurnal", duration_s=4.0))
        b = run_serving_cell(ServingSpec(pattern="diurnal", duration_s=4.0))
        assert a == b

    def test_stream_trace_mismatch_raises(self, stack):
        trace, _ = build_trace_and_stream(stack)
        short_stream = stack.synthesizer.synthesize(np.full(3, 0.5))
        simulator = ServingSimulator(
            evaluator=stack.evaluator,
            placement=stack.placement,
            policy=StaticPolicy(stack.static_config),
            ladder=stack.ladder,
            scenario=stack.scenario,
            slo_s=0.075,
        )
        with pytest.raises(ValueError, match="requests"):
            simulator.run(trace, short_stream)

    def test_thermal_cap_limits_peak_temperature(self):
        throttling = run_serving_cell(
            ServingSpec(pattern="poisson", scenario="thermal-cap", policy="adaptive",
                        duration_s=6.0)
        )
        assert throttling.peak_temperature_c > 0
        params = ThermalParams()
        assert throttling.peak_temperature_c < params.cap_c + 10

    def test_battery_budget_reported(self):
        report = run_serving_cell(
            ServingSpec(pattern="poisson", scenario="battery-budget",
                        policy="adaptive", duration_s=6.0)
        )
        assert report.battery_budget_j > 0
        assert report.battery_spent_j > 0

    def test_adaptive_beats_static_in_bursty_scenario(self):
        """The PR acceptance contract, at test scale."""
        wins = []
        for scenario in ("nominal", "battery-budget"):
            reports = {}
            for policy in ("static", "adaptive"):
                reports[policy] = run_serving_cell(
                    ServingSpec(pattern="bursty", scenario=scenario,
                                policy=policy, duration_s=12.0)
                )
            static, adaptive = reports["static"], reports["adaptive"]
            wins.append(
                adaptive.deadline_miss_rate < static.deadline_miss_rate
                and adaptive.energy_per_request_j <= static.energy_per_request_j
            )
        assert any(wins)


# ------------------------------------------------------------------- harness
class TestHarness:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="unknown platform"):
            ServingSpec(platform="gamecube")
        with pytest.raises(ValueError, match="unknown model"):
            ServingSpec(model="a99")
        with pytest.raises(ValueError, match="unknown load pattern"):
            ServingSpec(pattern="sawtooth")
        with pytest.raises(ValueError, match="unknown scenario"):
            ServingSpec(scenario="underwater")
        with pytest.raises(ValueError, match="unknown policy"):
            ServingSpec(policy="vibes")

    def test_report_json_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = ServingSpec(duration_s=3.0)
        report = run_serving_cell(spec)
        key = cell_cache_key(cache, spec)
        path = cache.put(key, report)
        assert path.suffix == ".json"  # plain-data report, human-readable
        rebuilt = cache.get(key, cls=ServingReport)
        assert rebuilt == report

    def test_sweep_concurrent_caches_and_dedupes(self, tmp_path):
        specs = [
            ServingSpec(pattern="poisson", policy="static", duration_s=3.0),
            ServingSpec(pattern="poisson", policy="adaptive", duration_s=3.0),
            ServingSpec(pattern="poisson", policy="static", duration_s=3.0),  # dupe
        ]
        first = sweep(specs, workers=2, executor="thread", cache_dir=str(tmp_path))
        assert first[0] == first[2]
        second = sweep(specs, cache_dir=str(tmp_path))
        assert second == first
        cache = ResultCache(tmp_path)
        assert cache.stats("serving").misses == 0
        assert len(cache) == 2  # deduped cells stored once

    def test_sweep_without_cache(self):
        reports = sweep([ServingSpec(duration_s=3.0, policy="static")])
        assert len(reports) == 1 and reports[0].num_requests > 0


# ----------------------------------------------------------------------- CLI
class TestCli:
    def test_serve_cli_prints_comparison(self, capsys):
        from repro.__main__ import main

        assert main(["serve", "--trace", "poisson", "--duration-s", "3"]) == 0
        out = capsys.readouterr().out
        assert "adaptive vs static" in out
        assert "miss rate" in out

    def test_serve_cli_writes_json(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "report.json"
        assert main([
            "serve", "--trace", "bursty", "--duration-s", "3",
            "--policy", "adaptive", "--json", str(path),
        ]) == 0
        payload = json.loads(path.read_text())
        assert payload["specs"][0]["pattern"] == "bursty"
        assert payload["reports"][0]["num_requests"] > 0

    def test_serve_cli_rejects_unknown_platform(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["serve", "--platform", "gamecube", "--duration-s", "1"])
        assert "valid platforms" in capsys.readouterr().err

    def test_artifact_cli_rejects_unknown_platform(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="valid platforms"):
            main(["fig5", "--platforms", "tx2-gpu", "bogus"])

    def test_cache_cli_stats_prune_clear(self, tmp_path, capsys):
        from repro.__main__ import main

        old = ResultCache(tmp_path, version="0")
        old.put(old.key("static", x=1), {"v": 1})
        cur = ResultCache(tmp_path)
        cur.put(cur.key("static", x=1), {"v": 2})

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2 entries" in out and "namespace" in out

        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 0
        assert "pruned 1" in capsys.readouterr().out
        assert len(ResultCache(tmp_path)) == 1

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed" in capsys.readouterr().out
        assert len(ResultCache(tmp_path)) == 0


# ------------------------------------------------- engines & latent-bug pins
class TestEngineEquivalence:
    """The indexed event core must be bit-identical to the reference loop."""

    @pytest.mark.parametrize("policy_name", ["static", "adaptive"])
    @pytest.mark.parametrize("pattern", ["poisson", "bursty"])
    def test_engines_bit_identical(self, stack, policy_name, pattern):
        trace = make_trace(pattern, stack.rate_hz, 5.0, seed=3)
        stream = stack.synthesizer.synthesize(trace.difficulties())
        reports = {}
        for engine in ("reference", "indexed"):
            policy = (
                StaticPolicy(stack.static_config)
                if policy_name == "static"
                else AdaptiveGovernor(stack.ladder, stack.batch_policy)
            )
            simulator = ServingSimulator(
                evaluator=stack.evaluator,
                placement=stack.placement,
                policy=policy,
                ladder=stack.ladder,
                scenario=stack.scenario,
                slo_s=stack.spec.slo_ms / 1e3,
                batch_policy=stack.batch_policy,
                engine=engine,
            )
            reports[engine] = simulator.run(trace, stream)
        assert reports["reference"] == reports["indexed"]

    @pytest.mark.parametrize("engine", ["reference", "indexed"])
    def test_exit_head_mismatch_raises(self, stack, engine):
        """Regression: a stream with the wrong number of exit heads used to
        crash deep inside the controller; now both engines refuse upfront."""
        trace, _ = build_trace_and_stream(stack)
        from repro.serving.stream import ServingStream

        stream = stack.synthesizer.synthesize(trace.difficulties())
        wrong = ServingStream(
            exit_logits=stream.exit_logits[:-1],
            final_logits=stream.final_logits,
            labels=stream.labels,
        )
        simulator = ServingSimulator(
            evaluator=stack.evaluator,
            placement=stack.placement,
            policy=StaticPolicy(stack.static_config),
            ladder=stack.ladder,
            scenario=stack.scenario,
            slo_s=0.075,
            engine=engine,
        )
        with pytest.raises(ValueError, match="exit heads"):
            simulator.run(trace, wrong)

    @pytest.mark.parametrize("engine", ["reference", "indexed"])
    def test_spike_check_counts_inflight_batch(self, stack, engine):
        """Regression: the backlog-spike check ignored the batch that
        ``next_batch`` had just popped, so a burst exactly one batch over the
        emergency threshold never triggered a governor re-decision."""
        trace = replay_trace(np.zeros(5))
        stream = stack.synthesizer.synthesize(trace.difficulties())
        simulator = ServingSimulator(
            evaluator=stack.evaluator,
            placement=stack.placement,
            policy=StaticPolicy(stack.static_config),
            ladder=stack.ladder,
            scenario=stack.scenario,
            slo_s=0.075,
            batch_policy=BatchPolicy(max_batch=4, timeout_s=0.004),
            window_s=100.0,
            emergency_backlog_batches=1.0,
            engine=engine,
        )
        report = simulator.run(trace, stream)
        # The first batch of 4 leaves a backlog of 1: 1 queued + 4 in
        # flight > 4 is a spike, so the governor decides twice (initial +
        # emergency), never on the (100 s) window.
        assert report.governor_decisions == 2

    def test_replay_day_scale_keeps_final_arrival(self):
        """Regression: the implicit replay horizon was ``max + 1e-9``, which
        float rounding absorbs beyond ~10⁴ s — the strict ``< duration``
        filter then silently dropped the day's last request."""
        times = np.array([0.0, 3600.0, 86_399.5, 86_400.0])
        trace = replay_trace(times)
        assert trace.num_requests == len(times)
        assert trace.arrival_s[-1] == 86_400.0


class TestAdmissionAndSloClasses:
    """Admission control and latency-class serving on the indexed engine."""

    def _overloaded(self, **extra):
        return ServingSpec(
            pattern="bursty",
            policy="static",
            duration_s=8.0,
            utilization=1.2,
            **extra,
        )

    def test_drop_accounting_and_no_negative_latencies(self):
        report = run_serving_cell(self._overloaded(admission_max_queue=4))
        assert report.num_dropped > 0
        assert report.num_served + report.num_dropped == report.num_requests
        assert report.drop_rate == pytest.approx(
            report.num_dropped / report.num_requests
        )
        # Regression: dropped requests once entered the latency pool with
        # completion 0, manufacturing negative latencies.
        assert report.latency_ms_p50 > 0
        assert report.latency_ms_mean > 0

    def test_critical_bypass_protects_criticals(self):
        report = run_serving_cell(
            self._overloaded(admission_max_queue=4, critical_fraction=0.25)
        )
        crit = report.class_stats["latency_critical"]
        best = report.class_stats["best_effort"]
        assert crit["num_dropped"] == 0
        assert best["num_dropped"] > 0
        assert crit["num_requests"] + best["num_requests"] == report.num_requests

    def test_defer_mode_serves_everything(self):
        report = run_serving_cell(
            self._overloaded(admission_max_queue=6, admission_mode="defer")
        )
        assert report.num_dropped == 0
        assert report.num_deferred > 0
        assert report.num_served == report.num_requests

    def test_critical_p95_beats_best_effort_under_contention(self):
        report = run_serving_cell(self._overloaded(critical_fraction=0.2))
        crit = report.class_stats["latency_critical"]
        best = report.class_stats["best_effort"]
        assert crit["num_served"] > 20 and best["num_served"] > 20
        assert crit["latency_ms_p95"] <= best["latency_ms_p95"]
