"""NSGA-II engine, genetic operators, and the Pareto archive."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.pareto import dominates
from repro.search import operators
from repro.search.archive import ParetoArchive
from repro.search.individual import Individual
from repro.search.nsga2 import (
    NSGA2,
    Nsga2Config,
    Problem,
    environmental_selection,
    rank_and_crowd,
)


class ZdtLikeProblem(Problem):
    """Integer-genome bi-objective toy with a known trade-off.

    Genome of length 8 with genes in [0, 10]; objectives (maximise):
    f1 = mean(g)/10, f2 = 1 - (mean(g)/10)^2 scaled by a diversity factor —
    an explicit convex front.
    """

    length = 8
    bounds = np.full(8, 11, dtype=np.int64)

    def sample(self, rng):
        return rng.integers(0, 11, size=self.length)

    def evaluate(self, genome):
        x = genome.mean() / 10.0
        spread = genome.std() / 10.0
        f1 = x
        f2 = 1.0 - x**2 - 0.05 * spread
        return np.asarray([f1, f2]), {"x": x}

    def crossover(self, a, b, rng):
        return operators.uniform_crossover(a, b, rng)

    def mutate(self, genome, rng):
        return operators.creep_mutation(genome, self.bounds, rng, prob=0.3)


class TestOperators:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 20), st.integers(0, 2**31))
    def test_uniform_crossover_preserves_multiset(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 5, size=n)
        b = rng.integers(0, 5, size=n)
        ca, cb = operators.uniform_crossover(a.copy(), b.copy(), rng)
        np.testing.assert_array_equal(np.sort(np.concatenate([ca, cb])),
                                      np.sort(np.concatenate([a, b])))

    def test_two_point_crossover_segments(self):
        rng = np.random.default_rng(0)
        a = np.zeros(10, dtype=np.int64)
        b = np.ones(10, dtype=np.int64)
        ca, cb = operators.two_point_crossover(a, b, rng)
        np.testing.assert_array_equal(ca + cb, np.ones(10))

    def test_crossover_shape_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            operators.uniform_crossover(np.zeros(3), np.zeros(4), rng)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31))
    def test_reset_mutation_in_bounds(self, seed):
        rng = np.random.default_rng(seed)
        bounds = np.asarray([2, 5, 9, 3])
        genome = np.asarray([0, 4, 8, 2])
        mutated = operators.reset_mutation(genome, bounds, rng, prob=1.0)
        assert (mutated >= 0).all() and (mutated < bounds).all()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31))
    def test_creep_mutation_steps_at_most_one(self, seed):
        rng = np.random.default_rng(seed)
        bounds = np.full(6, 10, dtype=np.int64)
        genome = np.full(6, 5, dtype=np.int64)
        mutated = operators.creep_mutation(genome, bounds, rng, prob=1.0)
        assert np.abs(mutated - genome).max() <= 1

    def test_creep_clips_at_bounds(self):
        rng = np.random.default_rng(1)
        bounds = np.asarray([3, 3])
        for _ in range(20):
            out = operators.creep_mutation(np.asarray([0, 2]), bounds, rng, prob=1.0)
            assert (out >= 0).all() and (out < bounds).all()

    def test_bitflip(self):
        rng = np.random.default_rng(2)
        bits = np.zeros(50, dtype=np.int64)
        flipped = operators.bitflip_mutation(bits, rng, prob=1.0)
        assert flipped.sum() == 50

    def test_mutation_does_not_modify_input(self):
        rng = np.random.default_rng(3)
        genome = np.asarray([1, 2, 3])
        operators.reset_mutation(genome, np.asarray([5, 5, 5]), rng, prob=1.0)
        np.testing.assert_array_equal(genome, [1, 2, 3])


class TestRankAndSelection:
    def _pop(self, objectives):
        pop = [Individual(genome=np.asarray([i])) for i in range(len(objectives))]
        for ind, obj in zip(pop, objectives):
            ind.objectives = np.asarray(obj, dtype=float)
        return pop

    def test_ranks_assigned(self):
        pop = self._pop([[2, 2], [1, 1], [3, 0]])
        rank_and_crowd(pop)
        assert pop[0].rank == 0 and pop[2].rank == 0
        assert pop[1].rank == 1

    def test_environmental_selection_keeps_best_front(self):
        pop = self._pop([[2, 2], [1, 1], [3, 0], [0, 3]])
        survivors = environmental_selection(pop, 3)
        ranks = [s.rank for s in survivors]
        assert all(r == 0 for r in ranks)

    def test_selection_truncates_by_crowding(self):
        pop = self._pop([[0, 4], [1, 3], [1.1, 2.9], [2, 2], [4, 0]])
        survivors = environmental_selection(pop, 4)
        xs = sorted(float(s.objectives[0]) for s in survivors)
        # The crowded middle point (1.1, 2.9) should be the one dropped.
        assert 1.1 not in xs


class TestParetoArchive:
    def _ind(self, objs, key=None):
        ind = Individual(genome=np.asarray(key if key is not None else objs))
        ind.objectives = np.asarray(objs, dtype=float)
        return ind

    def test_dominated_rejected(self):
        archive = ParetoArchive()
        assert archive.add(self._ind([2, 2]))
        assert not archive.add(self._ind([1, 1]))
        assert len(archive) == 1

    def test_dominating_evicts(self):
        archive = ParetoArchive()
        archive.add(self._ind([1, 1]))
        archive.add(self._ind([2, 2]))
        assert len(archive) == 1
        np.testing.assert_array_equal(archive.items[0].objectives, [2, 2])

    def test_incomparable_coexist(self):
        archive = ParetoArchive()
        archive.add(self._ind([2, 0]))
        archive.add(self._ind([0, 2]))
        assert len(archive) == 2

    def test_duplicate_genome_skipped(self):
        archive = ParetoArchive()
        assert archive.add(self._ind([1, 0], key=[7]))
        assert not archive.add(self._ind([0, 1], key=[7]))

    def test_truncation_by_crowding(self):
        archive = ParetoArchive(max_size=3)
        for i in range(6):
            archive.add(self._ind([i, 5 - i]))
        assert len(archive) == 3
        xs = sorted(float(ind.objectives[0]) for ind in archive)
        assert xs[0] == 0 and xs[-1] == 5  # extremes survive truncation

    def test_unevaluated_rejected(self):
        archive = ParetoArchive()
        with pytest.raises(ValueError):
            archive.add(Individual(genome=np.asarray([1])))

    def test_best_by(self):
        archive = ParetoArchive()
        archive.add(self._ind([2, 0]))
        archive.add(self._ind([0, 2]))
        best = archive.best_by(lambda ind: ind.objectives[1])
        assert best.objectives[1] == 2

    def test_best_by_empty(self):
        with pytest.raises(ValueError):
            ParetoArchive().best_by(lambda i: 0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)), min_size=1, max_size=30))
    def test_archive_is_always_mutually_nondominated(self, points):
        archive = ParetoArchive()
        for i, p in enumerate(points):
            archive.add(self._ind(list(p), key=[i]))
        objs = archive.objectives()
        for i in range(len(objs)):
            for j in range(len(objs)):
                if i != j:
                    assert not dominates(objs[i], objs[j])


class TestNsga2Engine:
    def test_iterations_accounting(self):
        config = Nsga2Config(population=10, generations=5)
        assert config.iterations == 50

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            Nsga2Config(population=0, generations=1)

    def test_population_size_constant(self):
        engine = NSGA2(ZdtLikeProblem(), Nsga2Config(population=12, generations=4), rng=0)
        final = engine.run()
        assert len(final) == 12

    def test_deterministic_under_seed(self):
        def run(seed):
            engine = NSGA2(ZdtLikeProblem(), Nsga2Config(population=10, generations=4), rng=seed)
            pop = engine.run()
            return sorted(tuple(ind.genome) for ind in pop)

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_evaluation_caching(self):
        engine = NSGA2(ZdtLikeProblem(), Nsga2Config(population=10, generations=5), rng=1)
        engine.run()
        assert engine.num_evaluations <= len(engine.history)
        assert engine.num_evaluations == len({ind.key() for ind in engine.history})

    def test_front_improves_over_random(self):
        """The evolved front covers more hypervolume than equal-budget
        random search (dominance counts are brittle on a continuous front,
        HV is the standard comparison)."""
        from repro.metrics.hypervolume import hypervolume
        from repro.metrics.pareto import pareto_front

        problem = ZdtLikeProblem()
        budget = 16 * 25
        engine = NSGA2(problem, Nsga2Config(population=16, generations=25), rng=2)
        engine.run()
        explored = np.stack([ind.objectives for ind in engine.history])
        rng = np.random.default_rng(3)
        random_points = np.stack(
            [problem.evaluate(problem.sample(rng))[0] for _ in range(budget)]
        )
        reference = np.asarray([-0.1, -0.1])
        hv_evolved = hypervolume(pareto_front(explored), reference)
        hv_random = hypervolume(pareto_front(random_points), reference)
        assert hv_evolved > hv_random

    def test_history_grows_per_generation(self):
        engine = NSGA2(ZdtLikeProblem(), Nsga2Config(population=8, generations=3), rng=4)
        engine.run()
        assert len(engine.history) == 8 * 3

    def test_on_generation_callback(self):
        calls = []
        engine = NSGA2(
            ZdtLikeProblem(), Nsga2Config(population=8, generations=4), rng=5,
            on_generation=lambda g, pop: calls.append((g, len(pop))),
        )
        engine.run()
        assert [c[0] for c in calls] == [1, 2, 3]
        assert all(n == 8 for _, n in calls)
