"""Runtime controllers, the DVFS governor, and the deployment simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accuracy.exit_model import BackboneExitOracle
from repro.baselines.attentivenas import attentivenas_model
from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSetting
from repro.hardware.energy import EnergyModel
from repro.runtime.controller import (
    ConfidenceThresholdController,
    EntropyThresholdController,
    OracleController,
    tune_thresholds,
)
from repro.runtime.governor import DvfsGovernor
from repro.runtime.simulator import StreamSimulator


def _stream(n=60, classes=5, exits=3, seed=0):
    """Synthetic logits stream: later exits are more confident/correct."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, classes, size=n)
    exit_logits = rng.normal(0, 1, size=(exits, n, classes))
    final_logits = rng.normal(0, 1, size=(n, classes))
    for i in range(exits):
        strength = 1.0 + 2.0 * i
        correct = rng.random(n) < 0.4 + 0.2 * i
        exit_logits[i, correct, labels[correct]] += strength
    final_logits[np.arange(n), labels] += 4.0
    return exit_logits, final_logits, labels


class TestOracleController:
    def test_requires_labels(self):
        exit_logits, _, _ = _stream()
        with pytest.raises(ValueError):
            OracleController().decide(exit_logits)

    def test_first_correct_exit_taken(self):
        labels = np.asarray([0, 0])
        exit_logits = np.zeros((2, 2, 2))
        exit_logits[0, 0, 0] = 5.0   # exit0 correct on sample0
        exit_logits[0, 1, 1] = 5.0   # exit0 wrong on sample1
        exit_logits[1, :, 0] = 5.0   # exit1 correct on both
        decisions = OracleController().decide(exit_logits, labels)
        np.testing.assert_array_equal(decisions, [0, 1])

    def test_no_exit_correct_runs_full(self):
        labels = np.asarray([0])
        exit_logits = np.zeros((2, 1, 2))
        exit_logits[:, 0, 1] = 5.0  # both exits wrong
        decisions = OracleController().decide(exit_logits, labels)
        assert decisions[0] == 2


class TestThresholdControllers:
    def test_entropy_zero_never_exits(self):
        exit_logits, _, labels = _stream()
        controller = EntropyThresholdController(0.0, num_exits=3)
        decisions = controller.decide(exit_logits)
        assert (decisions == 3).mean() > 0.9  # ~nothing below zero entropy

    def test_entropy_one_always_exits_first(self):
        exit_logits, _, _ = _stream()
        controller = EntropyThresholdController(1.0, num_exits=3)
        decisions = controller.decide(exit_logits)
        assert (decisions == 0).all()

    def test_entropy_monotone_in_threshold(self):
        exit_logits, _, _ = _stream()
        lo = EntropyThresholdController(0.2, 3).decide(exit_logits)
        hi = EntropyThresholdController(0.8, 3).decide(exit_logits)
        assert (hi <= lo).all()  # looser threshold -> exit no later

    def test_confidence_controller(self):
        exit_logits, _, _ = _stream()
        strict = ConfidenceThresholdController(0.999, 3).decide(exit_logits)
        lax = ConfidenceThresholdController(0.01, 3).decide(exit_logits)
        assert (lax == 0).all()
        assert strict.mean() > lax.mean()

    def test_num_exits_mismatch(self):
        exit_logits, _, _ = _stream()
        with pytest.raises(ValueError):
            EntropyThresholdController(0.5, 2).decide(exit_logits)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            EntropyThresholdController(1.5, 2)

    def test_per_exit_thresholds(self):
        exit_logits, _, _ = _stream()
        controller = EntropyThresholdController(np.asarray([0.0, 0.0, 1.0]), 3)
        decisions = controller.decide(exit_logits)
        assert set(decisions.tolist()) <= {2, 3}


class TestTuneThresholds:
    def test_entropy_rate_roughly_hit(self):
        exit_logits, _, _ = _stream(n=400)
        thresholds = tune_thresholds(exit_logits, target_exit_rate=0.3, kind="entropy")
        controller = EntropyThresholdController(thresholds, 3)
        decisions = controller.decide(exit_logits)
        first_rate = (decisions == 0).mean()
        assert first_rate == pytest.approx(0.3, abs=0.07)

    def test_confidence_kind(self):
        exit_logits, _, _ = _stream(n=200)
        thresholds = tune_thresholds(exit_logits, 0.5, kind="confidence")
        assert thresholds.shape == (3,)
        assert (thresholds >= 0).all() and (thresholds <= 1).all()

    @pytest.mark.parametrize("target", [0.2, 0.4, 0.6, 0.8])
    def test_entropy_rate_hit_across_targets(self, target):
        exit_logits, _, _ = _stream(n=600, seed=5)
        thresholds = tune_thresholds(exit_logits, target, kind="entropy")
        decisions = EntropyThresholdController(thresholds, 3).decide(exit_logits)
        # Per-exit take rate: of the samples *reaching* each exit, the target
        # fraction should stop there (the quantity tune_thresholds calibrates).
        reached = len(decisions)
        for i in range(3):
            taken = (decisions == i).sum()
            assert taken / reached == pytest.approx(target, abs=0.08)
            reached -= taken
            if reached < 40:  # too few survivors for a rate estimate
                break

    @pytest.mark.parametrize("target", [0.3, 0.6])
    def test_confidence_rate_hit(self, target):
        exit_logits, _, _ = _stream(n=600, seed=6)
        thresholds = tune_thresholds(exit_logits, target, kind="confidence")
        controller = ConfidenceThresholdController(thresholds, 3)
        decisions = controller.decide(exit_logits)
        first_rate = (decisions == 0).mean()
        assert first_rate == pytest.approx(target, abs=0.08)

    def test_invalid_kind(self):
        exit_logits, _, _ = _stream()
        with pytest.raises(ValueError):
            tune_thresholds(exit_logits, 0.5, kind="magic")

    def test_invalid_rate(self):
        exit_logits, _, _ = _stream()
        with pytest.raises(ValueError):
            tune_thresholds(exit_logits, 1.5)


class TestControllerMonotonicity:
    """Tighter thresholds must never produce *more* early exits."""

    def test_entropy_early_exit_fraction_monotone(self):
        exit_logits, _, _ = _stream(n=300)
        fractions = []
        for threshold in np.linspace(0.0, 1.0, 9):
            decisions = EntropyThresholdController(threshold, 3).decide(exit_logits)
            fractions.append((decisions < 3).mean())
        assert fractions == sorted(fractions)
        assert fractions[0] < fractions[-1]  # the sweep actually moves

    def test_entropy_decisions_pointwise_monotone(self):
        exit_logits, _, _ = _stream(n=300)
        previous = None
        for threshold in np.linspace(0.0, 1.0, 9):
            decisions = EntropyThresholdController(threshold, 3).decide(exit_logits)
            if previous is not None:
                assert (decisions <= previous).all()  # looser -> exit no later
            previous = decisions

    def test_confidence_early_exit_fraction_monotone(self):
        exit_logits, _, _ = _stream(n=300)
        fractions = []
        for threshold in np.linspace(0.0, 1.0, 9):
            decisions = ConfidenceThresholdController(threshold, 3).decide(exit_logits)
            fractions.append((decisions < 3).mean())
        # Higher confidence bar = tighter: fractions non-increasing.
        assert fractions == sorted(fractions, reverse=True)
        assert fractions[0] > fractions[-1]

    def test_per_exit_tightening_single_exit(self):
        exit_logits, _, _ = _stream(n=300)
        loose = np.asarray([0.8, 0.8, 0.8])
        for tightened in range(3):
            thresholds = loose.copy()
            thresholds[tightened] = 0.1
            base = EntropyThresholdController(loose, 3).decide(exit_logits)
            tight = EntropyThresholdController(thresholds, 3).decide(exit_logits)
            assert (tight == tightened).sum() <= (base == tightened).sum()


class TestGovernor:
    def test_default_setting(self):
        governor = DvfsGovernor(DvfsSetting(1.0, 1.0))
        assert governor.setting_for(0) == DvfsSetting(1.0, 1.0)

    def test_per_exit_override(self):
        governor = DvfsGovernor(
            DvfsSetting(1.0, 1.0), per_exit={0: DvfsSetting(0.5, 0.5)}
        )
        assert governor.setting_for(0) == DvfsSetting(0.5, 0.5)
        assert governor.setting_for(1) == DvfsSetting(1.0, 1.0)

    def test_switching_energy(self):
        governor = DvfsGovernor(
            DvfsSetting(1.0, 1.0),
            per_exit={0: DvfsSetting(0.5, 0.5)},
            switch_cost_j=0.01,
        )
        decisions = np.asarray([0, 1, 0, 1])  # three transitions
        assert governor.switching_energy(decisions) == pytest.approx(0.03)

    def test_no_switch_cost_by_default(self):
        governor = DvfsGovernor(DvfsSetting(1.0, 1.0))
        assert governor.switching_energy(np.asarray([0, 1, 2])) == 0.0

    def test_no_charge_when_exits_share_a_setting(self):
        # Different exits mapped to the *same* operating point: the hardware
        # never retunes, so alternating decisions must cost nothing.
        shared = DvfsSetting(0.5, 0.5)
        governor = DvfsGovernor(
            DvfsSetting(1.0, 1.0),
            per_exit={0: shared, 1: shared},
            switch_cost_j=0.01,
        )
        assert governor.switching_energy(np.asarray([0, 1, 0, 1])) == 0.0
        # ...but moving between the shared point and the default does charge.
        assert governor.switching_energy(np.asarray([0, 2, 0])) == pytest.approx(0.02)

    def test_switch_cost_counts_transitions_not_samples(self):
        governor = DvfsGovernor(
            DvfsSetting(1.0, 1.0),
            per_exit={0: DvfsSetting(0.5, 0.5)},
            switch_cost_j=0.01,
        )
        constant = np.zeros(50, dtype=np.int64)
        assert governor.switching_energy(constant) == 0.0
        blocks = np.asarray([0] * 10 + [1] * 10 + [0] * 10)  # two transitions
        assert governor.switching_energy(blocks) == pytest.approx(0.02)

    def test_single_sample_never_charged(self):
        governor = DvfsGovernor(
            DvfsSetting(1.0, 1.0),
            per_exit={0: DvfsSetting(0.5, 0.5)},
            switch_cost_j=0.01,
        )
        assert governor.switching_energy(np.asarray([0])) == 0.0


class TestStreamSimulator:
    @pytest.fixture(scope="class")
    def simulator(self, static_evaluator, surrogate):
        backbone = attentivenas_model("a3")
        static = static_evaluator.evaluate(backbone)
        oracle = BackboneExitOracle(
            backbone.key, backbone.total_mbconv_layers,
            surrogate.accuracy_fraction(backbone), seed=0,
        )
        evaluator = DynamicEvaluator(
            config=backbone, cost=static_evaluator.cost(backbone), oracle=oracle,
            energy_model=EnergyModel(static_evaluator.platform),
            baseline_energy_j=static.energy_j, baseline_latency_s=static.latency_s,
        )
        placement = ExitPlacement(backbone.total_mbconv_layers, (6, 10, 14))
        governor = DvfsGovernor(static_evaluator.default_setting)
        return StreamSimulator(evaluator, placement, governor)

    def test_report_consistency(self, simulator):
        exit_logits, final_logits, labels = _stream(n=80, exits=3)
        report = simulator.simulate(exit_logits, final_logits, labels, OracleController())
        assert 0 <= report.accuracy <= 1
        assert report.exit_usage.sum() == pytest.approx(1.0)
        assert report.mean_energy_j > 0 and report.mean_latency_s > 0

    def test_oracle_beats_never_exiting_on_energy(self, simulator):
        exit_logits, final_logits, labels = _stream(n=80, exits=3)
        oracle_report = simulator.simulate(
            exit_logits, final_logits, labels, OracleController()
        )
        never = EntropyThresholdController(0.0, 3)
        never_report = simulator.simulate(exit_logits, final_logits, labels, never)
        assert oracle_report.mean_energy_j < never_report.mean_energy_j
        assert oracle_report.accuracy >= never_report.accuracy

    def test_always_first_exit_cheapest(self, simulator):
        exit_logits, final_logits, labels = _stream(n=80, exits=3)
        always = EntropyThresholdController(1.0, 3)
        report = simulator.simulate(exit_logits, final_logits, labels, always)
        assert report.early_exit_fraction == 1.0
        oracle_report = simulator.simulate(
            exit_logits, final_logits, labels, OracleController()
        )
        assert report.mean_energy_j <= oracle_report.mean_energy_j + 1e-9

    def test_exit_count_mismatch(self, simulator):
        exit_logits, final_logits, labels = _stream(n=10, exits=2)
        with pytest.raises(ValueError):
            simulator.simulate(exit_logits, final_logits, labels, OracleController())

    def test_switching_cost_accounted(self, static_evaluator, surrogate, simulator):
        exit_logits, final_logits, labels = _stream(n=40, exits=3)
        governor = DvfsGovernor(
            static_evaluator.default_setting,
            per_exit={0: DvfsSetting(0.75, 1.0)},
            switch_cost_j=0.001,
        )
        sim = StreamSimulator(simulator.evaluator, simulator.placement, governor)
        report = sim.simulate(exit_logits, final_logits, labels, OracleController())
        assert report.switching_energy_j > 0
