"""Extension features: HW proxy, random-search baseline, per-exit DVFS
planner, and the CLI entry point."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cost import estimate_cost
from repro.baselines.attentivenas import attentivenas_model, attentivenas_models
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.measurement import HardwareInTheLoop
from repro.hardware.proxy import HardwareProxy
from repro.runtime.planner import plan_per_exit_dvfs
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import Nsga2Config
from repro.search.random_search import RandomSearch


@pytest.fixture(scope="module")
def fitted_proxy(tx2_gpu):
    hwil = HardwareInTheLoop(tx2_gpu, noise_cv=0.01, seed=0)
    models = attentivenas_models()
    train = [estimate_cost(models[n]) for n in ("a0", "a2", "a4", "a6")]
    proxy = HardwareProxy(tx2_gpu).fit(train, hwil, settings_per_network=10, seed=0)
    return proxy, hwil


class TestHardwareProxy:
    def test_unfitted_raises(self, tx2_gpu, tx2_dvfs):
        proxy = HardwareProxy(tx2_gpu)
        cost = estimate_cost(attentivenas_model("a0"))
        with pytest.raises(RuntimeError):
            proxy.predict_energy_j(cost, tx2_dvfs.default_setting())

    def test_interpolation_accuracy(self, fitted_proxy, tx2_dvfs):
        proxy, hwil = fitted_proxy
        held_out = [estimate_cost(attentivenas_model(n)) for n in ("a1", "a3", "a5")]
        accuracy = proxy.validate(held_out, hwil, settings_per_network=5, seed=2)
        assert accuracy.latency_mape < 0.15
        assert accuracy.energy_mape < 0.15

    def test_predictions_positive(self, fitted_proxy, tx2_dvfs):
        proxy, _ = fitted_proxy
        cost = estimate_cost(attentivenas_model("a3"))
        for setting in (tx2_dvfs.default_setting(), tx2_dvfs.decode(0, 0)):
            assert proxy.predict_latency_s(cost, setting) > 0
            assert proxy.predict_energy_j(cost, setting) > 0

    def test_predicts_size_ordering(self, fitted_proxy, tx2_dvfs):
        proxy, _ = fitted_proxy
        setting = tx2_dvfs.default_setting()
        small = proxy.predict_energy_j(estimate_cost(attentivenas_model("a1")), setting)
        large = proxy.predict_energy_j(estimate_cost(attentivenas_model("a5")), setting)
        assert large > small

    def test_predicts_frequency_trend(self, fitted_proxy, tx2_dvfs):
        """Latency must rise as the core clock falls, even off the training
        settings — the physically-motivated 1/f features guarantee it."""
        proxy, _ = fitted_proxy
        cost = estimate_cost(attentivenas_model("a3"))
        slow = proxy.predict_latency_s(cost, tx2_dvfs.decode(1, 8))
        fast = proxy.predict_latency_s(cost, tx2_dvfs.decode(12, 8))
        assert slow > fast

    def test_training_point_count(self, fitted_proxy):
        proxy, _ = fitted_proxy
        assert proxy.num_training_points == 4 * 10

    def test_invalid_ridge(self, tx2_gpu):
        with pytest.raises(ValueError):
            HardwareProxy(tx2_gpu, ridge=-1.0)


class TestRandomSearch:
    def _problem(self, static_evaluator, surrogate):
        backbone = attentivenas_model("a0")
        engine = InnerEngine(
            backbone, static_evaluator, surrogate.accuracy_fraction(backbone),
            nsga=Nsga2Config(population=4, generations=2), seed=0,
        )
        return engine.problem

    def test_budget_respected(self, static_evaluator, surrogate):
        problem = self._problem(static_evaluator, surrogate)
        search = RandomSearch(problem, budget=25, rng=0)
        history = search.run()
        assert len(history) == 25 == search.num_evaluations

    def test_pareto_archive(self, static_evaluator, surrogate):
        problem = self._problem(static_evaluator, surrogate)
        search = RandomSearch(problem, budget=30, rng=1)
        search.run()
        archive = search.pareto()
        assert 1 <= len(archive) <= 30

    def test_mostly_distinct_genomes(self, static_evaluator, surrogate):
        problem = self._problem(static_evaluator, surrogate)
        search = RandomSearch(problem, budget=40, rng=2)
        history = search.run()
        keys = {ind.key() for ind in history}
        assert len(keys) > 30

    def test_invalid_budget(self, static_evaluator, surrogate):
        with pytest.raises(ValueError):
            RandomSearch(self._problem(static_evaluator, surrogate), budget=0)

    def test_deterministic(self, static_evaluator, surrogate):
        problem = self._problem(static_evaluator, surrogate)
        a = RandomSearch(problem, budget=10, rng=3).run()
        b = RandomSearch(problem, budget=10, rng=3).run()
        assert [i.key() for i in a] == [i.key() for i in b]


class TestPerExitPlanner:
    @pytest.fixture(scope="class")
    def evaluator(self, static_evaluator, surrogate):
        backbone = attentivenas_model("a3")
        engine = InnerEngine(
            backbone, static_evaluator, surrogate.accuracy_fraction(backbone),
            nsga=Nsga2Config(population=4, generations=2), seed=0,
        )
        return engine.evaluator

    def test_plan_never_worse_than_single(self, evaluator, tx2_dvfs):
        placement = ExitPlacement(evaluator.config.total_mbconv_layers, (6, 10, 14))
        plan = plan_per_exit_dvfs(evaluator, placement, tx2_dvfs)
        assert plan.per_exit_energy_j <= plan.single_setting_energy_j + 1e-12
        assert 0.0 <= plan.extra_gain < 1.0

    def test_settings_for_every_path(self, evaluator, tx2_dvfs):
        placement = ExitPlacement(evaluator.config.total_mbconv_layers, (6, 14))
        plan = plan_per_exit_dvfs(evaluator, placement, tx2_dvfs)
        assert set(plan.settings) == {0, 1, 2}

    def test_latency_slack_respected(self, evaluator, tx2_dvfs):
        placement = ExitPlacement(evaluator.config.total_mbconv_layers, (6, 14))
        tight = plan_per_exit_dvfs(evaluator, placement, tx2_dvfs, latency_slack=1.0)
        loose = plan_per_exit_dvfs(evaluator, placement, tx2_dvfs, latency_slack=2.5)
        assert loose.per_exit_energy_j <= tight.per_exit_energy_j + 1e-12

    def test_invalid_slack(self, evaluator, tx2_dvfs):
        placement = ExitPlacement(evaluator.config.total_mbconv_layers, (6,))
        with pytest.raises(ValueError):
            plan_per_exit_dvfs(evaluator, placement, tx2_dvfs, latency_slack=0.5)


class TestCli:
    def test_list(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig5" in out

    def test_table2_artifact(self, capsys):
        from repro.__main__ import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "2.94" in out

    def test_unknown_artifact(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["nonsense"])

    def test_unknown_profile(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["table2", "--profile", "huge"])
