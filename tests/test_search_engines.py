"""IOE, OOE and the bi-level HadasSearch facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.attentivenas import attentivenas_model
from repro.exits.placement import MIN_EXIT_POSITION
from repro.search.hadas import HadasConfig, HadasSearch
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import Nsga2Config


@pytest.fixture(scope="module")
def inner_result(static_evaluator, surrogate):
    backbone = attentivenas_model("a3")
    engine = InnerEngine(
        backbone, static_evaluator, surrogate.accuracy_fraction(backbone),
        nsga=Nsga2Config(population=10, generations=4), seed=0,
    )
    return backbone, engine.run()


@pytest.fixture(scope="module")
def hadas_result():
    config = HadasConfig(
        platform="tx2-gpu", seed=11,
        outer_population=8, outer_generations=3,
        inner_population=8, inner_generations=3,
        ioe_candidates=2, oracle_samples=512,
    )
    return HadasSearch(config).run()


class TestInnerEngine:
    def test_pareto_nonempty(self, inner_result):
        _, result = inner_result
        assert len(result.pareto) >= 1
        assert result.num_evaluations > 0

    def test_every_member_has_valid_placement(self, inner_result):
        backbone, result = inner_result
        total = backbone.total_mbconv_layers
        for member in result.pareto:
            placement = member.payload["evaluation"].placement
            assert placement.total_layers == total
            assert all(MIN_EXIT_POSITION <= p <= total - 1 for p in placement.positions)
            assert placement.num_exits >= 1

    def test_settings_on_grid(self, inner_result, tx2_dvfs):
        _, result = inner_result
        for member in result.pareto:
            setting = member.payload["evaluation"].setting
            assert setting.core_ghz in tx2_dvfs.core_freqs
            assert setting.emc_ghz in tx2_dvfs.emc_freqs

    def test_points_2d_shapes(self, inner_result):
        _, result = inner_result
        points = result.points_2d()
        assert points.shape[1] == 2
        explored = result.points_2d(explored=True)
        assert len(explored) >= len(points)

    def test_points_dynamic_axis(self, inner_result):
        _, result = inner_result
        dyn = result.points_2d(accuracy="dynamic")
        mean_ni = result.points_2d(accuracy="mean_n_i")
        # Union accuracy is at least mean N_i everywhere.
        assert np.all(dyn[:, 1] >= mean_ni[:, 1] - 1e-12)

    def test_points_invalid_axis(self, inner_result):
        _, result = inner_result
        with pytest.raises(ValueError):
            result.points_2d(accuracy="nonsense")

    def test_best_has_max_d_score(self, inner_result):
        _, result = inner_result
        best = result.best
        scores = [m.payload["evaluation"].d_score for m in result.pareto]
        assert best.payload["evaluation"].d_score == max(scores)

    def test_deterministic(self, static_evaluator, surrogate):
        backbone = attentivenas_model("a0")

        def run():
            engine = InnerEngine(
                backbone, static_evaluator, surrogate.accuracy_fraction(backbone),
                nsga=Nsga2Config(population=6, generations=3), seed=42,
            )
            result = engine.run()
            return sorted(m.key() for m in result.pareto)

        assert run() == run()


class TestHadasSearch:
    def test_archives_populated(self, hadas_result):
        assert len(hadas_result.backbone_pareto()) >= 1
        assert len(hadas_result.dynn_pareto()) >= 1

    def test_evaluation_counts(self, hadas_result):
        static_evals, dynamic_evals = hadas_result.num_evaluations
        assert static_evals >= hadas_result.config.outer_population
        assert dynamic_evals > 0

    def test_inner_results_per_backbone(self, hadas_result):
        inner = hadas_result.outer.inner_results
        assert 1 <= len(inner)
        for key, result in inner.items():
            assert result.backbone_key == key

    def test_dynamic_archive_individuals_complete(self, hadas_result):
        for member in hadas_result.dynn_pareto():
            assert "config" in member.payload
            assert "static" in member.payload
            assert "evaluation" in member.payload
            # Combined genome: backbone genes + indicators + 2 DVFS genes.
            config = member.payload["config"]
            expected = (
                hadas_result.space.genome_length
                + (config.total_mbconv_layers - MIN_EXIT_POSITION)
                + 2
            )
            assert len(member.genome) == expected

    def test_top_models_distinct_backbones(self, hadas_result):
        models = hadas_result.top_models(3)
        keys = [m.payload["config"].key for m in models]
        distinct_available = len(
            {m.payload["config"].key for m in hadas_result.dynn_pareto()}
        )
        assert len(set(keys)) == min(3, max(distinct_available, 1))

    def test_top_models_by_d_score(self, hadas_result):
        models = hadas_result.top_models(2, by="d_score", distinct_backbones=False)
        scores = [m.payload["evaluation"].d_score for m in models]
        assert scores == sorted(scores, reverse=True)

    def test_top_models_invalid_ranking(self, hadas_result):
        with pytest.raises(ValueError):
            hadas_result.top_models(2, by="nonsense")

    def test_selected_model_on_archive(self, hadas_result):
        selected = hadas_result.selected_model()
        assert selected in hadas_result.dynn_pareto()

    def test_static_points_shape(self, hadas_result):
        points = hadas_result.outer.static_points()
        assert points.shape[1] == 2
        assert (points[:, 0] > 50).all()  # accuracy in percent
        assert (points[:, 1] > 0).all()  # energy in joules

    def test_dynamic_points_sources(self, hadas_result):
        inner_points = hadas_result.outer.dynamic_points(source="inner")
        archive_points = hadas_result.outer.dynamic_points(source="archive")
        assert inner_points.shape[1] == 2
        assert archive_points.shape[1] == 2
        with pytest.raises(ValueError):
            hadas_result.outer.dynamic_points(source="x")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HadasConfig(outer_population=0)
        with pytest.raises(ValueError):
            HadasConfig(gamma=-0.5)

    def test_paper_profile_budget(self):
        config = HadasConfig.paper_profile()
        assert config.outer_iterations == 450
        assert config.inner_iterations == 3500

    def test_make_inner_engine_shares_budget(self, hadas_result):
        search = HadasSearch(hadas_result.config)
        engine = search.make_inner_engine(attentivenas_model("a0"))
        assert engine.nsga_config.population == hadas_result.config.inner_population
        assert engine.nsga_config.generations == hadas_result.config.inner_generations

    def test_determinism_same_seed(self):
        config = HadasConfig(
            platform="tx2-gpu", seed=5,
            outer_population=6, outer_generations=2,
            inner_population=6, inner_generations=2,
            ioe_candidates=2, oracle_samples=256,
        )
        first = HadasSearch(config).run()
        second = HadasSearch(config).run()
        a = first.selected_model().payload["evaluation"]
        b = second.selected_model().payload["evaluation"]
        assert a.d_score == b.d_score
        assert a.placement.positions == b.placement.positions
