"""Exit machinery: placement space X, evaluation semantics, branches."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exits.branch import ExitBranch
from repro.exits.evaluation import evaluate_exit_logits, ideal_mapping_stats
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement, ExitSpace
from repro.nn.tensor import Tensor


class TestExitPlacement:
    def test_valid(self):
        placement = ExitPlacement(20, (5, 10, 19))
        assert placement.num_exits == 3

    def test_requires_at_least_one(self):
        with pytest.raises(ValueError):
            ExitPlacement(20, ())

    def test_position_bounds(self):
        with pytest.raises(ValueError):
            ExitPlacement(20, (4,))  # before layer 5
        with pytest.raises(ValueError):
            ExitPlacement(20, (20,))  # the final layer hosts no exit

    def test_strictly_increasing(self):
        with pytest.raises(ValueError):
            ExitPlacement(20, (7, 7))
        with pytest.raises(ValueError):
            ExitPlacement(20, (9, 7))

    def test_indicator_roundtrip(self):
        placement = ExitPlacement(20, (5, 12, 19))
        back = ExitPlacement.from_indicators(20, placement.indicators)
        assert back == placement

    def test_indicator_length(self):
        placement = ExitPlacement(20, (5,))
        assert len(placement.indicators) == 20 - MIN_EXIT_POSITION

    def test_indicator_wrong_length(self):
        with pytest.raises(ValueError):
            ExitPlacement.from_indicators(20, np.ones(3))

    def test_relative_depths(self):
        placement = ExitPlacement(20, (5, 10))
        np.testing.assert_allclose(placement.relative_depths(), [0.25, 0.5])

    def test_key_distinct(self):
        assert ExitPlacement(20, (5,)).key != ExitPlacement(20, (6,)).key

    @settings(max_examples=40, deadline=None)
    @given(st.integers(8, 40), st.data())
    def test_roundtrip_random(self, layers, data):
        slots = layers - MIN_EXIT_POSITION
        bits = data.draw(
            hnp.arrays(np.int64, slots, elements=st.integers(0, 1)).filter(
                lambda a: a.sum() > 0
            )
        )
        placement = ExitPlacement.from_indicators(layers, bits)
        np.testing.assert_array_equal(placement.indicators, bits)


class TestExitSpace:
    def test_table2_formulas(self):
        """Table II: max(n_X) = sum(l_i) - 5 and positions in [5, L)."""
        space = ExitSpace(22)
        assert space.max_exits == 22 - 5
        assert space.num_slots == 17
        assert space.cardinality() == 2**17 - 1

    def test_count_with_exits_binomial(self):
        space = ExitSpace(15)
        assert space.count_with_exits(1) == 10
        assert space.count_with_exits(10) == 1
        assert sum(space.count_with_exits(k) for k in range(1, 11)) == space.cardinality()

    def test_too_shallow_backbone_rejected(self):
        with pytest.raises(ValueError):
            ExitSpace(5)

    def test_sample_valid(self, rng):
        space = ExitSpace(18)
        for _ in range(30):
            placement = space.sample(rng)
            assert 1 <= placement.num_exits <= space.max_exits

    def test_sample_density(self, rng):
        space = ExitSpace(40)
        counts = [space.sample(rng, density=0.5).num_exits for _ in range(100)]
        assert abs(np.mean(counts) - 0.5 * space.num_slots) < 4

    def test_repair_empty(self, rng):
        space = ExitSpace(12)
        repaired = space.repair(np.zeros(space.num_slots), rng)
        assert repaired.sum() == 1

    def test_repair_keeps_valid(self, rng):
        space = ExitSpace(12)
        bits = np.zeros(space.num_slots, dtype=np.int64)
        bits[2] = 1
        np.testing.assert_array_equal(space.repair(bits, rng), bits)


class TestIdealMappingStats:
    def test_known_case(self):
        # 4 samples, 2 exits + final.
        correct = np.asarray([
            [1, 1, 1],   # exits at 0
            [0, 1, 1],   # exits at 1
            [0, 0, 1],   # runs full, correct
            [0, 0, 0],   # runs full, wrong
        ], dtype=bool)
        stats = ideal_mapping_stats(correct)
        np.testing.assert_allclose(stats.n_i, [0.25, 0.5])
        assert stats.final_accuracy == 0.75
        assert stats.dynamic_accuracy == 0.75
        np.testing.assert_allclose(stats.usage, [0.25, 0.25, 0.5])

    def test_union_gain(self):
        correct = np.asarray([[1, 0], [0, 1]], dtype=bool)  # 1 exit + final
        stats = ideal_mapping_stats(correct)
        assert stats.dynamic_accuracy == 1.0
        assert stats.final_accuracy == 0.5

    def test_dissimilarity_definition(self):
        correct = np.zeros((10, 4), dtype=bool)
        correct[:3, 0] = True   # N_1 = 0.3
        correct[:6, 1] = True   # N_2 = 0.6
        correct[:5, 2] = True   # N_3 = 0.5
        stats = ideal_mapping_stats(correct)
        np.testing.assert_allclose(stats.dissimilarity, [1.0, 0.7, 0.4])

    def test_mean_n_i(self):
        correct = np.zeros((4, 3), dtype=bool)
        correct[:2, 0] = True
        correct[:1, 1] = True
        stats = ideal_mapping_stats(correct)
        assert stats.mean_n_i == pytest.approx((0.5 + 0.25) / 2)

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            ideal_mapping_stats(np.zeros(3))

    @settings(max_examples=40, deadline=None)
    @given(hnp.arrays(np.bool_, st.tuples(st.integers(1, 40), st.integers(1, 6))))
    def test_invariants(self, correct):
        stats = ideal_mapping_stats(correct)
        assert stats.usage.sum() == pytest.approx(1.0)
        assert 0 <= stats.dynamic_accuracy <= 1
        assert stats.dynamic_accuracy >= stats.final_accuracy - 1e-12
        assert stats.dynamic_accuracy >= max(stats.n_i, default=0) - 1e-12
        assert np.all(stats.dissimilarity >= 0) and np.all(stats.dissimilarity <= 1)
        # Usage at exit i can never exceed its marginal N_i.
        for i in range(stats.num_exits):
            assert stats.usage[i] <= stats.n_i[i] + 1e-12


class TestEvaluateExitLogits:
    def test_from_logits(self):
        labels = np.asarray([0, 1, 1])
        exit_logits = np.zeros((2, 3, 2))
        exit_logits[0, 0, 0] = 5.0   # exit0 correct on sample0
        exit_logits[0, 1:, 0] = 5.0  # exit0 wrong on samples 1,2
        exit_logits[1, :, 1] = 5.0   # exit1 predicts class1: right on 1,2
        final_logits = np.zeros((3, 2))
        final_logits[:, 1] = 5.0     # final predicts class1
        stats = evaluate_exit_logits(exit_logits, final_logits, labels)
        np.testing.assert_allclose(stats.n_i, [1 / 3, 2 / 3])
        assert stats.dynamic_accuracy == 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            evaluate_exit_logits(np.zeros((3, 2)), np.zeros((3, 2)), np.zeros(3))


class TestExitBranch:
    def test_output_shape(self):
        branch = ExitBranch(in_channels=8, num_classes=5, seed=0)
        out = branch(Tensor(np.random.default_rng(0).normal(size=(2, 8, 6, 6))))
        assert out.shape == (2, 5)

    def test_custom_width(self):
        branch = ExitBranch(8, 5, branch_width=4, seed=0)
        assert branch.width == 4
        out = branch(Tensor(np.zeros((1, 8, 4, 4))))
        assert out.shape == (1, 5)

    def test_trainable(self):
        branch = ExitBranch(4, 3, seed=0)
        out = branch(Tensor(np.random.default_rng(1).normal(size=(2, 4, 4, 4))))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in branch.parameters())

    def test_seeded_init_deterministic(self):
        a = ExitBranch(4, 3, seed=9)
        b = ExitBranch(4, 3, seed=9)
        np.testing.assert_array_equal(a.conv.weight.data, b.conv.weight.data)
