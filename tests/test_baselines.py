"""Baselines: the a0..a6 family, optimized baselines, BranchyNet heuristic."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cost import estimate_cost
from repro.arch.space import BackboneSpace
from repro.baselines.attentivenas import (
    ATTENTIVENAS_MODELS,
    attentivenas_model,
    attentivenas_models,
)
from repro.baselines.branchynet import branchynet_exits
from repro.baselines.optimized_baseline import optimize_baseline_backbones
from repro.exits.placement import MIN_EXIT_POSITION
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import Nsga2Config


class TestAttentiveNasFamily:
    def test_seven_models(self):
        models = attentivenas_models()
        assert list(models) == list(ATTENTIVENAS_MODELS) == [f"a{i}" for i in range(7)]

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            attentivenas_model("a7")

    def test_all_within_search_space(self, space):
        """Every baseline must be encodable by the Table-II space (the paper
        samples baselines and backbones from the same supernet)."""
        for name, config in attentivenas_models().items():
            genome = space.encode(config)
            assert space.decode(genome).key == config.key, name

    def test_macs_monotone(self):
        macs = [
            estimate_cost(attentivenas_model(name)).total_macs
            for name in ATTENTIVENAS_MODELS
        ]
        assert all(b > a for a, b in zip(macs, macs[1:]))

    def test_macs_match_published_scale(self):
        """Published AttentiveNAS MACs: a0 203M ... a6 709M (within ~20%)."""
        published = {"a0": 203e6, "a1": 279e6, "a2": 317e6, "a3": 357e6,
                     "a4": 444e6, "a5": 491e6, "a6": 709e6}
        for name, target in published.items():
            measured = estimate_cost(attentivenas_model(name)).total_macs
            assert measured == pytest.approx(target, rel=0.20), name

    def test_resolution_progression(self):
        models = attentivenas_models()
        assert models["a0"].resolution == 192
        assert models["a6"].resolution == 288

    def test_num_classes_propagated(self):
        config = attentivenas_model("a0", num_classes=10)
        assert config.num_classes == 10

    def test_a6_deepest(self):
        models = attentivenas_models()
        depths = {name: cfg.total_mbconv_layers for name, cfg in models.items()}
        assert depths["a6"] == max(depths.values())


class TestOptimizedBaselines:
    def test_runs_inner_engine_per_model(self, static_evaluator, surrogate):
        calls = []

        def factory(name, config):
            calls.append(name)
            return InnerEngine(
                config, static_evaluator, surrogate.accuracy_fraction(config),
                nsga=Nsga2Config(population=6, generations=2), seed=0,
            )

        models = {k: attentivenas_models()[k] for k in ("a0", "a6")}
        results = optimize_baseline_backbones(factory, models)
        assert calls == ["a0", "a6"]
        assert set(results) == {"a0", "a6"}
        for name, result in results.items():
            assert len(result.pareto) >= 1


class TestBranchyNet:
    def test_uniform_positions(self):
        config = attentivenas_model("a6")
        placement = branchynet_exits(config, num_exits=3)
        assert placement.num_exits == 3
        positions = np.asarray(placement.positions)
        gaps = np.diff(positions)
        assert gaps.max() - gaps.min() <= 2  # roughly uniform

    def test_respects_min_position(self):
        config = attentivenas_model("a0")
        placement = branchynet_exits(config, num_exits=5)
        assert min(placement.positions) >= MIN_EXIT_POSITION

    def test_clamps_excess_exits(self):
        config = attentivenas_model("a0")
        total = config.total_mbconv_layers
        placement = branchynet_exits(config, num_exits=100)
        assert placement.num_exits <= total - MIN_EXIT_POSITION

    def test_single_exit(self):
        config = attentivenas_model("a3")
        placement = branchynet_exits(config, num_exits=1)
        assert placement.num_exits == 1

    def test_too_shallow_rejected(self):
        mini = BackboneSpace(
            num_classes=10,
        )
        config = mini.decode(mini.min_genome())
        # min config has 17 layers in the full space - find a genuinely
        # shallow one via direct construction instead.
        from repro.arch.config import STAGE_STRIDES, BackboneConfig, StageConfig

        stages = tuple(
            StageConfig(16 if i == 0 else 24, 1, 3, 1 if i == 0 else 4, s)
            for i, s in enumerate(STAGE_STRIDES)
        )
        shallow = BackboneConfig(192, 16, stages, 1792)
        assert shallow.total_mbconv_layers == 7
        placement = branchynet_exits(shallow, num_exits=2)
        assert placement.num_exits >= 1
