"""The task codec: slim specs, registry dispatch, spec ≡ direct evaluation.

The codec's load-bearing contract is the round trip: for every registered
kind, ``run_spec(task_spec(kind, ...))`` — the path a worker process takes,
rebuilding the evaluator stack from data — must be *value-identical* to
evaluating directly against live objects in the submitting process.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy.exit_model import ExitCapabilityModel
from repro.accuracy.surrogate import AccuracySurrogate
from repro.arch.space import BackboneSpace
from repro.engine.executors import ProcessExecutor, is_codec_call
from repro.engine.tasks import (
    TaskSpec,
    register_task,
    run_spec,
    spec_task,
    task_kinds,
    task_spec,
)
from repro.eval.static import StaticEvaluator
from repro.hardware.platform import get_platform
from repro.search.hadas import HadasConfig, HadasSearch

SPACE = BackboneSpace()


@st.composite
def space_genomes(draw):
    bounds = SPACE.gene_bounds()
    return tuple(draw(st.integers(0, int(b) - 1)) for b in bounds)


class TestRegistry:
    def test_builtin_kinds_registered(self):
        kinds = task_kinds()
        for kind in (
            "static-backbone",
            "inner-run",
            "platform-experiment",
            "serving-cell",
            "fleet-cell",
            "table2-dvfs",
        ):
            assert kind in kinds

    def test_unknown_kind_rejected_at_build_and_run(self):
        with pytest.raises(KeyError, match="unknown task kind"):
            task_spec("warp-drive", x=1)
        with pytest.raises(KeyError, match="unknown task kind"):
            run_spec(TaskSpec(kind="warp-drive", params={}))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_task("table2-dvfs")(lambda: None)

    def test_fingerprint_stable_and_content_addressed(self):
        a = task_spec("table2-dvfs", platform="tx2-gpu")
        b = task_spec("table2-dvfs", platform="tx2-gpu")
        c = task_spec("table2-dvfs", platform="agx-gpu")
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_spec_task_is_codec_detectable(self):
        task = spec_task(task_spec("table2-dvfs", platform="tx2-gpu"))
        assert is_codec_call((task.fn, task.args))
        assert not is_codec_call((len, ((),)))

    def test_specs_are_slim_pickles(self):
        # The codec's raison d'être: a spec pickle is orders of magnitude
        # smaller than the evaluator graph a closure task would drag along.
        spec = task_spec(
            "static-backbone",
            platform="tx2-gpu",
            num_classes=100,
            seed=0,
            genome=tuple(int(g) for g in SPACE.sample_genome(np.random.default_rng(0))),
        )
        assert len(pickle.dumps(spec)) < 2_000


class TestStaticBackboneRoundTrip:
    @settings(max_examples=15, deadline=None)
    @given(space_genomes())
    def test_spec_matches_direct_evaluation(self, genome):
        surrogate = AccuracySurrogate(SPACE, seed=0)
        evaluator = StaticEvaluator(get_platform("tx2-gpu"), surrogate, seed=0)
        config = SPACE.decode(np.asarray(genome, dtype=np.int64))
        direct = evaluator.evaluate(config)

        objectives, payload = run_spec(
            task_spec(
                "static-backbone",
                platform="tx2-gpu",
                num_classes=SPACE.num_classes,
                seed=0,
                genome=genome,
            )
        )
        assert payload["static"] == direct  # dataclass equality: exact floats
        assert payload["config"] == config
        np.testing.assert_array_equal(objectives, np.asarray(direct.objectives()))


class TestInnerRunRoundTrip:
    def test_spec_matches_direct_inner_run(self):
        config = HadasConfig(
            platform="tx2-gpu",
            seed=5,
            outer_population=6,
            outer_generations=2,
            inner_population=6,
            inner_generations=2,
            ioe_candidates=2,
            oracle_samples=256,
        )
        search = HadasSearch(config)
        backbone = search.space.sample(np.random.default_rng(3))
        direct = search.make_inner_engine(backbone).run()

        result = run_spec(
            task_spec(
                "inner-run",
                platform=config.platform,
                num_classes=config.num_classes,
                seed=config.seed,
                cache_dir=None,
                backbone=backbone,
                gamma=config.gamma,
                population=config.inner_population,
                generations=config.inner_generations,
                oracle_samples=config.oracle_samples,
                literal_ratios=config.literal_ratios,
                capability_model=ExitCapabilityModel(),
            )
        )
        assert result.backbone_key == direct.backbone_key
        assert result.num_evaluations == direct.num_evaluations
        assert len(result.pareto.items) == len(direct.pareto.items)
        for mine, theirs in zip(result.pareto.items, direct.pareto.items):
            np.testing.assert_array_equal(mine.genome, theirs.genome)
            np.testing.assert_array_equal(mine.objectives, theirs.objectives)

    def test_inner_task_lowers_to_spec_only_when_worth_it(self):
        config = HadasConfig(
            platform="tx2-gpu",
            seed=5,
            outer_population=6,
            outer_generations=2,
            inner_population=6,
            inner_generations=2,
            ioe_candidates=2,
            oracle_samples=256,
        )
        backbone = SPACE.sample(np.random.default_rng(3))
        serial = HadasSearch(config)
        assert serial._spec_context is not None
        assert serial.inner_task(backbone).fn is not run_spec  # serial: closure
        pooled = HadasSearch(
            HadasConfig(**{**config.__dict__, "workers": 2, "executor": "process"})
        )
        try:
            task = pooled.inner_task(backbone)
            assert task.fn is run_spec  # process boundary: slim spec
            assert len(pickle.dumps(task)) < 4_000
        finally:
            pooled.close()

    def test_custom_space_disables_spec_lowering(self):
        # An injected space whose fingerprint differs from the default one
        # is not reconstructible from (platform, num_classes, seed) alone,
        # so tasks must stay closures even across a process executor.
        custom = BackboneSpace(num_classes=10)
        search = HadasSearch(
            HadasConfig(workers=2, executor="process"), space=custom
        )
        try:
            assert search._spec_context is None
            backbone = custom.sample(np.random.default_rng(0))
            assert search.inner_task(backbone).fn is not run_spec
        finally:
            search.close()

    def test_equivalent_injected_space_keeps_spec_lowering(self):
        search = HadasSearch(
            HadasConfig(workers=2, executor="process"),
            space=BackboneSpace(num_classes=100),
        )
        try:
            assert search._spec_context is not None
        finally:
            search.close()


class TestServingCellRoundTrip:
    def test_spec_matches_direct_cell(self):
        from repro.serving.harness import ServingSpec, run_serving_cell, sweep

        spec = ServingSpec(pattern="poisson", duration_s=2.0, seed=3)
        direct = run_serving_cell(spec)
        assert run_spec(task_spec("serving-cell", spec=spec)) == direct
        # And through a real process pool (the bench_serving cell contract).
        via_pool = sweep([spec, spec], workers=2, executor="process")
        assert via_pool == [direct, direct]


class TestProcessTransport:
    def test_specs_evaluate_identically_across_the_process_boundary(self):
        specs = [
            task_spec("table2-dvfs", platform=p)
            for p in ("tx2-gpu", "agx-gpu", "carmel-cpu", "denver-cpu")
        ]
        inline = [run_spec(spec) for spec in specs]
        executor = ProcessExecutor(2)
        try:
            pooled = executor.run([(run_spec, (spec,)) for spec in specs])
        finally:
            executor.close()
        assert pooled == inline


class TestSpecKeyedCacheAddresses:
    """`spec_task(..., cache=...)`: the fingerprint as the default address."""

    def test_two_equal_specs_hit_the_same_entry(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.service import EvaluationService

        cache = ResultCache(tmp_path / "engine-cache")
        first_task = spec_task(task_spec("table2-dvfs", platform="tx2-gpu"), cache=cache)
        second_task = spec_task(task_spec("table2-dvfs", platform="tx2-gpu"), cache=cache)
        assert first_task.key == second_task.key
        assert first_task.key.namespace == "spec"
        with EvaluationService(cache=cache) as service:
            first = service.evaluate_batch([first_task])[0]
            second = service.evaluate_batch([second_task])[0]
        assert service.stats.executed == 1  # second batch was a pure cache read
        assert service.stats.cache_hits == 1
        assert first == second

    def test_distinct_specs_get_distinct_addresses(self, tmp_path):
        from repro.engine.cache import ResultCache

        cache = ResultCache(tmp_path / "engine-cache")
        tx2 = spec_task(task_spec("table2-dvfs", platform="tx2-gpu"), cache=cache)
        agx = spec_task(task_spec("table2-dvfs", platform="agx-gpu"), cache=cache)
        assert tx2.key != agx.key

    def test_explicit_domain_key_wins_over_fingerprint(self, tmp_path):
        from repro.engine.cache import ResultCache

        cache = ResultCache(tmp_path / "engine-cache")
        spec = task_spec("table2-dvfs", platform="tx2-gpu")
        domain_key = cache.key("custom", platform="tx2-gpu")
        assert spec_task(spec, key=domain_key, cache=cache).key is domain_key
        assert spec_task(spec).key is None  # no cache, no implicit key
