"""Accuracy surrogates: calibration anchors, monotonicity, the exit oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy.calibration import DEFAULT_ANCHORS
from repro.accuracy.exit_model import BackboneExitOracle, ExitCapabilityModel
from repro.accuracy.surrogate import AccuracySurrogate
from repro.baselines.attentivenas import attentivenas_model, attentivenas_models
from repro.exits.placement import ExitPlacement


class TestAccuracySurrogate:
    def test_anchored_to_paper_values(self, surrogate):
        a0 = surrogate.noiseless_accuracy(attentivenas_model("a0"))
        a6 = surrogate.noiseless_accuracy(attentivenas_model("a6"))
        assert a0 == pytest.approx(DEFAULT_ANCHORS.a0_accuracy, abs=0.02)
        assert a6 == pytest.approx(DEFAULT_ANCHORS.a6_accuracy, abs=0.02)

    def test_noise_small_and_deterministic(self, surrogate):
        config = attentivenas_model("a3")
        first = surrogate.accuracy(config)
        second = surrogate.accuracy(config)
        assert first == second
        assert abs(first - surrogate.noiseless_accuracy(config)) < 0.5

    def test_family_monotone(self, surrogate, baselines):
        accs = [surrogate.noiseless_accuracy(cfg) for cfg in baselines.values()]
        assert all(b > a - 0.15 for a, b in zip(accs, accs[1:]))
        assert accs[-1] > accs[0]

    def test_capacity_score_bounds(self, surrogate, space, rng):
        for _ in range(30):
            z = surrogate.capacity_score(space.sample(rng))
            assert 0.0 <= z <= 1.0

    def test_min_max_span(self, surrogate, space):
        small = surrogate.noiseless_accuracy(space.decode(space.min_genome()))
        large = surrogate.noiseless_accuracy(space.decode(space.max_genome()))
        assert large - small > 1.0  # noticeable accuracy spread
        assert 80.0 < small < large < 92.0  # CIFAR-100-plausible band

    def test_accuracy_fraction(self, surrogate):
        config = attentivenas_model("a0")
        assert surrogate.accuracy_fraction(config) == pytest.approx(
            surrogate.accuracy(config) / 100.0
        )

    def test_different_seeds_different_noise(self, space):
        config = attentivenas_model("a2")
        a = AccuracySurrogate(space, seed=1).accuracy(config)
        b = AccuracySurrogate(space, seed=2).accuracy(config)
        assert a != b

    def test_capacity_monotone_in_resolution(self, surrogate, space):
        genome = space.min_genome()
        scores = []
        for idx in range(len(space.resolutions)):
            genome = genome.copy()
            genome[0] = idx
            scores.append(surrogate.capacity_score(space.decode(genome)))
        assert all(b > a for a, b in zip(scores, scores[1:]))


class TestExitCapabilityModel:
    def test_maturity_saturating(self):
        model = ExitCapabilityModel()
        depths = np.linspace(0.1, 1.0, 10)
        values = model.maturity(depths)
        assert np.all(np.diff(values) > 0)  # increasing
        assert np.all(np.diff(values, 2) < 0)  # concave (diminishing returns)
        assert values[-1] == pytest.approx(1.0)

    def test_capability_below_backbone(self):
        model = ExitCapabilityModel()
        for u in (0.3, 0.7, 1.0):
            assert model.capability(0.9, u) <= 0.9

    def test_head_correlation_structure(self):
        model = ExitCapabilityModel()
        near = model.head_correlation(0.50, 0.55)
        far = model.head_correlation(0.30, 0.95)
        assert near > 0.95  # adjacent heads nearly redundant
        assert far < near
        assert model.head_correlation(0.4, 0.4) == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ExitCapabilityModel(maturity_k=0)
        with pytest.raises(ValueError):
            ExitCapabilityModel(head_quality=1.5)


class TestBackboneExitOracle:
    def _oracle(self, acc=0.875, layers=20, seed=0, **kwargs):
        return BackboneExitOracle("bb", layers, acc, seed=seed, **kwargs)

    def test_marginals_exact(self):
        oracle = self._oracle()
        assert oracle.final_column().mean() == pytest.approx(0.875, abs=1 / 2048)
        cap = oracle.model.capability(0.875, 10 / 20)
        assert oracle.n_i(10) == pytest.approx(cap, abs=1 / 1024)

    def test_n_i_monotone_in_depth(self):
        oracle = self._oracle()
        values = [oracle.n_i(p) for p in range(5, 20)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_columns_cached_and_deterministic(self):
        oracle = self._oracle()
        col_a = oracle.exit_column(8)
        col_b = oracle.exit_column(8)
        assert col_a is col_b
        other = self._oracle()
        np.testing.assert_array_equal(col_a, other.exit_column(8))

    def test_adjacent_exits_redundant_far_exits_not(self):
        oracle = self._oracle()
        base = oracle.exit_column(10)
        near = oracle.exit_column(11)
        far = oracle.exit_column(19)
        overlap_near = (base & near).sum() / max(base.sum(), 1)
        overlap_far_extra = (far & ~base).sum()
        assert overlap_near > 0.9  # near-duplicate
        assert overlap_far_extra > 0  # distant exit catches new samples

    def test_union_exceeds_final(self):
        """Spread exits catch samples the final head misses — the EEx
        accuracy gain of paper Table III."""
        oracle = self._oracle()
        placement = ExitPlacement(20, (5, 8, 11, 14, 17))
        stats = oracle.evaluate_placement(placement)
        assert stats.dynamic_accuracy > stats.final_accuracy + 0.01
        assert stats.dynamic_accuracy < stats.final_accuracy + 0.10

    def test_usage_sums_to_one(self):
        oracle = self._oracle()
        stats = oracle.evaluate_placement(ExitPlacement(20, (6, 12, 18)))
        assert stats.usage.sum() == pytest.approx(1.0)

    def test_position_bounds(self):
        oracle = self._oracle()
        with pytest.raises(ValueError):
            oracle.exit_column(0)
        with pytest.raises(ValueError):
            oracle.exit_column(21)

    def test_placement_layer_mismatch(self):
        oracle = self._oracle(layers=20)
        with pytest.raises(ValueError):
            oracle.evaluate_placement(ExitPlacement(15, (6,)))

    def test_invalid_accuracy(self):
        with pytest.raises(ValueError):
            self._oracle(acc=1.2)

    def test_different_backbones_different_streams(self):
        a = BackboneExitOracle("bb-a", 20, 0.875, seed=0)
        b = BackboneExitOracle("bb-b", 20, 0.875, seed=0)
        assert not np.array_equal(a.exit_column(10), b.exit_column(10))

    @settings(max_examples=15, deadline=None)
    @given(st.floats(0.5, 0.95), st.integers(10, 40))
    def test_dynamic_accuracy_bounded(self, acc, layers):
        oracle = BackboneExitOracle("x", layers, acc, seed=1, n_samples=512)
        positions = tuple(range(5, layers, max(1, layers // 6)))
        if not positions:
            return
        stats = oracle.evaluate_placement(ExitPlacement(layers, positions))
        assert stats.final_accuracy <= stats.dynamic_accuracy <= 1.0
