"""Architecture space: configs, genome encoding, cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.config import STAGE_STRIDES, BackboneConfig, StageConfig
from repro.arch.cost import estimate_cost, exit_branch_cost
from repro.arch.space import BackboneSpace, miniature_space


@st.composite
def genomes(draw, space: BackboneSpace):
    bounds = space.gene_bounds()
    genes = [draw(st.integers(0, int(b) - 1)) for b in bounds]
    return np.asarray(genes, dtype=np.int64)


FULL_SPACE = BackboneSpace()


class TestStageConfig:
    def test_valid(self):
        StageConfig(width=32, depth=3, kernel=3, expand=4, stride=2)

    @pytest.mark.parametrize("kwargs", [
        {"width": 0, "depth": 1, "kernel": 3, "expand": 1},
        {"width": 16, "depth": 0, "kernel": 3, "expand": 1},
        {"width": 16, "depth": 1, "kernel": 4, "expand": 1},
        {"width": 16, "depth": 1, "kernel": 3, "expand": 2},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ValueError):
            StageConfig(**kwargs)


class TestBackboneConfig:
    def _config(self) -> BackboneConfig:
        return FULL_SPACE.decode(FULL_SPACE.min_genome())

    def test_stage_strides_enforced(self):
        stages = tuple(
            StageConfig(16, 1, 3, 1, stride=1) for _ in STAGE_STRIDES
        )
        with pytest.raises(ValueError, match="stride"):
            BackboneConfig(192, 16, stages, 1792)

    def test_wrong_stage_count(self):
        with pytest.raises(ValueError):
            BackboneConfig(192, 16, (StageConfig(16, 1, 3, 1, 1),), 1792)

    def test_layer_unrolling_structure(self):
        config = self._config()
        layers = config.layers()
        kinds = [spec.kind for spec in layers]
        assert kinds[0] == "stem"
        assert kinds[-2:] == ["head", "classifier"]
        assert kinds.count("mbconv") == config.total_mbconv_layers

    def test_mbconv_indices_sequential(self):
        config = self._config()
        indices = [s.index for s in config.layers() if s.kind == "mbconv"]
        assert indices == list(range(1, config.total_mbconv_layers + 1))

    def test_channel_continuity(self):
        config = FULL_SPACE.decode(FULL_SPACE.max_genome())
        layers = config.layers()
        for prev, cur in zip(layers, layers[1:]):
            if cur.kind in ("mbconv", "head"):
                assert cur.in_channels == prev.out_channels

    def test_resolution_halves_with_stride(self):
        config = self._config()
        spatial = config.resolution // 2  # after stem
        for spec in config.layers():
            if spec.kind == "mbconv":
                assert spec.in_resolution == spatial
                spatial = max(1, spatial // spec.stride)

    def test_final_resolution_is_total_stride(self):
        config = FULL_SPACE.decode(FULL_SPACE.max_genome())
        head = [s for s in config.layers() if s.kind == "head"][0]
        assert head.in_resolution == config.resolution // 32

    def test_channels_at_layer(self):
        config = self._config()
        assert config.channels_at_layer(1) == config.stages[0].width
        last = config.total_mbconv_layers
        assert config.channels_at_layer(last) == config.stages[-1].width
        with pytest.raises(ValueError):
            config.channels_at_layer(0)
        with pytest.raises(ValueError):
            config.channels_at_layer(last + 1)

    def test_key_unique_per_config(self):
        a = FULL_SPACE.decode(FULL_SPACE.min_genome())
        b = FULL_SPACE.decode(FULL_SPACE.max_genome())
        assert a.key != b.key


class TestBackboneSpace:
    def test_cardinality_exceeds_paper_bound(self):
        assert FULL_SPACE.cardinality() > 2.94e11

    def test_table2_value_sets(self):
        widths = FULL_SPACE.distinct_widths()
        assert len(widths) == 16
        assert widths[0] == 16 and widths[-1] == 1984
        assert FULL_SPACE.depth_values() == (1, 2, 3, 4, 5, 6, 7, 8)
        assert FULL_SPACE.resolutions == (192, 224, 256, 288)

    def test_genome_length(self):
        assert FULL_SPACE.genome_length == 2 + 4 * 7 + 1 == len(FULL_SPACE.gene_bounds())

    @settings(max_examples=60, deadline=None)
    @given(genomes(FULL_SPACE))
    def test_decode_encode_roundtrip(self, genome):
        config = FULL_SPACE.decode(genome)
        np.testing.assert_array_equal(FULL_SPACE.encode(config), genome)

    def test_out_of_range_genome_rejected(self):
        genome = FULL_SPACE.min_genome()
        genome[0] = 99
        with pytest.raises(ValueError):
            FULL_SPACE.decode(genome)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            FULL_SPACE.decode(np.zeros(5, dtype=np.int64))

    def test_sampling_respects_bounds(self, rng):
        bounds = FULL_SPACE.gene_bounds()
        for _ in range(50):
            genome = FULL_SPACE.sample_genome(rng)
            assert (genome >= 0).all() and (genome < bounds).all()

    def test_sampling_covers_options(self, rng):
        seen_res = {FULL_SPACE.sample(rng).resolution for _ in range(120)}
        assert seen_res == set(FULL_SPACE.resolutions)

    def test_min_max_genomes(self):
        small = FULL_SPACE.decode(FULL_SPACE.min_genome())
        large = FULL_SPACE.decode(FULL_SPACE.max_genome())
        assert small.total_mbconv_layers < large.total_mbconv_layers
        assert small.resolution < large.resolution

    def test_miniature_space_structurally_compatible(self):
        mini = miniature_space()
        assert mini.genome_length == FULL_SPACE.genome_length
        config = mini.decode(mini.sample_genome(np.random.default_rng(0)))
        assert len(config.stages) == 7


class TestCostModel:
    def test_macs_scale_with_resolution(self):
        base = FULL_SPACE.decode(FULL_SPACE.min_genome())
        genome = FULL_SPACE.min_genome()
        genome[0] = len(FULL_SPACE.resolutions) - 1
        big = FULL_SPACE.decode(genome)
        ratio = (big.resolution / base.resolution) ** 2
        measured = estimate_cost(big).total_macs / estimate_cost(base).total_macs
        # Classifier/SE terms are resolution-independent: allow 10% slack.
        assert measured == pytest.approx(ratio, rel=0.1)

    def test_macs_increase_with_every_dimension(self):
        base_genome = FULL_SPACE.min_genome()
        base = estimate_cost(FULL_SPACE.decode(base_genome)).total_macs
        for gene in range(FULL_SPACE.genome_length):
            genome = base_genome.copy()
            genome[gene] = FULL_SPACE.gene_bounds()[gene] - 1
            if genome[gene] == 0:
                continue
            bigger = estimate_cost(FULL_SPACE.decode(genome)).total_macs
            assert bigger > base, f"gene {gene} did not increase MACs"

    def test_prefix_is_monotone_and_bounded(self):
        config = FULL_SPACE.decode(FULL_SPACE.max_genome())
        cost = estimate_cost(config)
        previous = 0.0
        for position in range(1, config.total_mbconv_layers + 1):
            macs = cost.prefix_macs(position)
            assert macs > previous
            previous = macs
        assert previous < cost.total_macs  # head + classifier excluded

    def test_prefix_invalid_position(self):
        cost = estimate_cost(FULL_SPACE.decode(FULL_SPACE.min_genome()))
        with pytest.raises(ValueError):
            cost.prefix(999)

    def test_prefix_zero_is_stem_only(self):
        cost = estimate_cost(FULL_SPACE.decode(FULL_SPACE.min_genome()))
        layers = cost.prefix(0)
        assert len(layers) == 1 and layers[0].kind == "stem"

    def test_se_optional(self):
        config = FULL_SPACE.decode(FULL_SPACE.max_genome())
        with_se = estimate_cost(config, include_se=True).total_macs
        without = estimate_cost(config, include_se=False).total_macs
        assert with_se > without

    def test_traffic_positive_and_intensity_finite(self):
        cost = estimate_cost(FULL_SPACE.decode(FULL_SPACE.min_genome()))
        for layer in cost.layers:
            assert layer.traffic_bytes > 0
            assert np.isfinite(layer.arithmetic_intensity)

    def test_depthwise_lowers_intensity(self):
        """MBConv (depthwise-heavy) layers have lower arithmetic intensity
        than the dense head convolution."""
        config = FULL_SPACE.decode(FULL_SPACE.max_genome())
        cost = estimate_cost(config)
        head = next(l for l in cost.layers if l.kind == "head")
        mb = cost.mbconv_layers()[-1]
        assert head.arithmetic_intensity > mb.arithmetic_intensity

    def test_exit_branch_cost_scales_with_channels(self):
        small = exit_branch_cost(32, 14, 100)
        large = exit_branch_cost(128, 14, 100)
        assert large.macs > small.macs
        assert large.params > small.params

    def test_exit_branch_custom_width(self):
        narrow = exit_branch_cost(64, 14, 100, branch_width=16)
        default = exit_branch_cost(64, 14, 100)
        assert narrow.macs < default.macs

    def test_params_match_known_formula_for_classifier(self):
        config = FULL_SPACE.decode(FULL_SPACE.min_genome())
        cost = estimate_cost(config)
        classifier = cost.layers[-1]
        expected = config.head_width * config.num_classes + config.num_classes
        assert classifier.params == expected
