"""Fleet serving: routers, the multi-device simulator, deployed designs,
the search → serve round trip, and the determinism guarantees."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.cache import ResultCache
from repro.search.hadas import HadasConfig, HadasSearch
from repro.serving.deploy import (
    DeployedDesign,
    design_from_individual,
    load_design,
    save_design,
)
from repro.serving.fleet import (
    DeviceLane,
    FleetSpec,
    build_fleet_stacks,
    build_fleet_trace_and_stream,
    fleet_cache_key,
    fleet_sweep,
    run_fleet_cell,
)
from repro.serving.harness import ServingSpec, build_serving_stack, run_serving_cell
from repro.serving.router import (
    DifficultyAwareRouter,
    LeastBacklogRouter,
    RoundRobinRouter,
    make_router,
)
from repro.serving.telemetry import render_fleet_report, render_router_comparison
from repro.serving.workload import BEST_EFFORT, LATENCY_CRITICAL


@pytest.fixture(scope="module")
def tiny_search_result():
    """One shared tiny-budget HADAS run (the search side of the loop)."""
    config = HadasConfig(
        platform="tx2-gpu", seed=5,
        outer_population=6, outer_generations=2,
        inner_population=6, inner_generations=3,
        ioe_candidates=1, oracle_samples=256,
    )
    return HadasSearch(config).run()


@pytest.fixture(scope="module")
def searched_design(tiny_search_result):
    return tiny_search_result.deployed_design()


# -------------------------------------------------------------------- routers
class _FakeLane:
    def __init__(self, index, capacity, energy, wait):
        self.index = index
        self.reference_capacity_rps = capacity
        self.reference_energy_j = energy
        self._wait = wait
        self.queue_depth = 0

    def estimated_wait_s(self, now_s):
        return self._wait


class TestRouters:
    def test_round_robin_cycles(self):
        router = RoundRobinRouter()
        lanes = [_FakeLane(i, 10.0, 0.1, 0.0) for i in range(3)]
        assert [
            router.route(0.5, BEST_EFFORT, 0.0, lanes) for _ in range(6)
        ] == [0, 1, 2, 0, 1, 2]

    def test_least_backlog_picks_least_wait(self):
        router = LeastBacklogRouter()
        lanes = [
            _FakeLane(0, 10.0, 0.1, 0.5),
            _FakeLane(1, 10.0, 0.1, 0.1),
            _FakeLane(2, 10.0, 0.1, 0.9),
        ]
        assert router.route(0.5, BEST_EFFORT, 0.0, lanes) == 1

    def test_least_backlog_ties_break_on_index(self):
        router = LeastBacklogRouter()
        lanes = [_FakeLane(i, 10.0, 0.1, 0.3) for i in range(3)]
        assert router.route(0.5, BEST_EFFORT, 0.0, lanes) == 0

    def test_difficulty_bands_follow_capacity_order(self):
        # Lane 1 is the weak device: it owns the easy band despite its index.
        lanes = [_FakeLane(0, 30.0, 0.3, 0.0), _FakeLane(1, 10.0, 0.1, 0.0)]
        router = DifficultyAwareRouter(lanes, slo_s=0.075)
        assert router.banded_lane(0.01) == 1  # easy -> weak lane (share 0.25)
        assert router.banded_lane(0.9) == 0  # hard -> strong lane
        assert router.banded_lane(1.0) == 0  # boundary difficulty still routed

    def test_difficulty_spills_on_backlog(self):
        busy_weak = _FakeLane(0, 10.0, 0.1, 10.0)  # banded choice, swamped
        idle_strong = _FakeLane(1, 30.0, 0.3, 0.0)
        router = DifficultyAwareRouter([busy_weak, idle_strong], slo_s=0.075)
        assert router.banded_lane(0.01) == 0
        assert router.route(0.01, BEST_EFFORT, 0.0, [busy_weak, idle_strong]) == 1

    def test_critical_spills_at_half_threshold(self):
        # Wait of 0.03 s sits between the critical threshold (0.5·0.5·SLO ≈
        # 0.019 s) and the best-effort one (0.5·SLO ≈ 0.038 s): best-effort
        # traffic stays in its band, criticals move to the idle lane.
        moderately_busy = _FakeLane(0, 10.0, 0.1, 0.03)
        idle_strong = _FakeLane(1, 30.0, 0.3, 0.0)
        lanes = [moderately_busy, idle_strong]
        router = DifficultyAwareRouter(lanes, slo_s=0.075)
        assert router.route(0.01, BEST_EFFORT, 0.0, lanes) == 0
        assert router.route(0.01, LATENCY_CRITICAL, 0.0, lanes) == 1

    def test_make_router_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown router"):
            make_router("telepathic", [], 0.075)


# ------------------------------------------------------------------ fleet spec
class TestFleetSpec:
    def test_aliases_canonicalised(self):
        spec = FleetSpec(platforms=("tx2", "xavier"))
        assert spec.platforms == ("tx2-gpu", "agx-gpu")

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one platform"):
            FleetSpec(platforms=())
        with pytest.raises(ValueError, match="unknown platform"):
            FleetSpec(platforms=("gamecube",))
        with pytest.raises(ValueError, match="unknown router"):
            FleetSpec(router="telepathic")
        with pytest.raises(ValueError, match="unknown policy"):
            FleetSpec(policy="vibes")
        with pytest.raises(ValueError, match="unknown load pattern"):
            FleetSpec(pattern="sawtooth")
        with pytest.raises(ValueError, match="unknown scenario"):
            FleetSpec(scenario="underwater")

    def test_alias_spelling_shares_cache_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = fleet_cache_key(cache, FleetSpec(platforms=("tx2", "xavier")))
        b = fleet_cache_key(cache, FleetSpec(platforms=("tx2-gpu", "agx-gpu")))
        assert a == b


# -------------------------------------------------------------- lane batching
class TestDeviceLane:
    @pytest.fixture(scope="class")
    def stack(self):
        return build_serving_stack(ServingSpec(duration_s=4.0, max_batch=4))

    def _lane(self, stack, times):
        from repro.serving.governor import StaticPolicy

        lane = DeviceLane(0, stack, StaticPolicy(stack.static_config))
        for i, t in enumerate(times):
            lane.push(i, float(t), critical=False)
        return lane

    def test_waits_for_fleet_clock(self, stack):
        lane = self._lane(stack, [0.0, 0.001])
        # Head expiry is 4 ms; the fleet clock is still at 1 ms: not ready.
        assert lane.next_ready_batch(until_s=0.001) is None
        formed = lane.next_ready_batch(until_s=1.0)
        assert formed is not None
        start, batch = formed
        assert start == pytest.approx(0.004)
        assert batch == [0, 1]

    def test_full_batch_dispatches_at_fill_time(self, stack):
        lane = self._lane(stack, [0.0, 0.001, 0.002, 0.003, 0.0035])
        start, batch = lane.next_ready_batch(until_s=1.0)
        assert start == pytest.approx(0.003)  # 4th arrival fills max_batch=4
        assert batch == [0, 1, 2, 3]
        assert lane.queue_depth == 1

    def test_opportunistic_fill_while_device_busy(self, stack):
        lane = self._lane(stack, [0.0, 0.2, 0.4])
        lane.t_free = 0.5
        start, batch = lane.next_ready_batch(until_s=1.0)
        assert start == pytest.approx(0.5)
        assert batch == [0, 1, 2]

    def test_backlog_counts_admitted_minus_dispatched(self, stack):
        lane = self._lane(stack, [0.0, 0.1, 0.2, 5.0])
        assert lane.backlog_at(0.25) == 3
        assert lane.next_ready_batch(until_s=10.0)[1] == [0]  # head timeout batch
        assert lane.backlog_at(0.25) == 2  # dispatched work no longer counted
        while lane.next_ready_batch(until_s=float("inf")) is not None:
            pass
        assert lane.backlog_at(0.25) == 0
        assert lane.backlog_at(5.5) == 0

    def test_critical_backlog_tracks_class(self, stack):
        from repro.serving.governor import StaticPolicy

        lane = DeviceLane(0, stack, StaticPolicy(stack.static_config))
        lane.push(0, 0.0, critical=True)
        lane.push(1, 0.1, critical=False)
        lane.push(2, 0.2, critical=True)
        assert lane.critical_backlog_at(0.15) == 1
        assert lane.critical_backlog_at(0.25) == 2
        assert lane.next_ready_batch(until_s=10.0)[1] == [0]  # head timeout batch
        assert lane.critical_backlog_at(0.25) == 1  # critical 2 still queued
        while lane.next_ready_batch(until_s=float("inf")) is not None:
            pass
        assert lane.critical_backlog_at(0.25) == 0


# ---------------------------------------------------------------- fleet cells
class TestFleetCell:
    @pytest.fixture(scope="class")
    def report(self):
        return run_fleet_cell(
            FleetSpec(platforms=("tx2-gpu", "agx-gpu"), pattern="bursty", duration_s=5.0)
        )

    def test_report_consistency(self, report):
        assert report.num_requests > 0
        assert len(report.devices) == 2
        assert sum(d.requests for d in report.devices) == report.num_requests
        assert sum(d.share for d in report.devices) == pytest.approx(1.0)
        assert sum(report.exit_usage) == pytest.approx(1.0)
        assert report.latency_ms_p50 <= report.latency_ms_p95 <= report.latency_ms_p99
        assert report.total_energy_j == pytest.approx(
            sum(d.energy_j for d in report.devices)
        )
        assert 0 <= report.deadline_miss_rate <= 1
        assert 0 < report.accuracy <= 1
        for device in report.devices:
            assert 0 <= device.utilization <= 1
            assert sum(device.exit_usage) == pytest.approx(1.0 if device.requests else 0.0)

    def test_render_fleet_report(self, report):
        text = render_fleet_report(report)
        assert "tx2-gpu" in text and "agx-gpu" in text
        assert "p95" in text

    @pytest.mark.parametrize("scenario", ["nominal", "thermal-cap", "battery-budget"])
    def test_fleet_of_one_matches_single_device(self, scenario):
        """A one-lane fleet must reproduce the single-device simulator exactly
        — in every scenario, including the capped ones."""
        fleet = run_fleet_cell(
            FleetSpec(platforms=("tx2-gpu",), pattern="bursty", scenario=scenario,
                      router="round_robin", duration_s=5.0)
        )
        single = run_serving_cell(ServingSpec(platform="tx2-gpu", pattern="bursty",
                                              scenario=scenario, duration_s=5.0))
        assert fleet.num_requests == single.num_requests
        assert fleet.latency_ms_p95 == pytest.approx(single.latency_ms_p95, abs=1e-9)
        assert fleet.latency_ms_p99 == pytest.approx(single.latency_ms_p99, abs=1e-9)
        assert fleet.total_energy_j == pytest.approx(single.total_energy_j, abs=1e-9)
        assert fleet.deadline_miss_rate == pytest.approx(single.deadline_miss_rate)
        assert fleet.exit_usage == single.exit_usage
        assert fleet.accuracy == pytest.approx(single.accuracy)
        assert fleet.battery_spent_j == pytest.approx(single.battery_spent_j, abs=1e-9)
        assert fleet.battery_exhausted == single.battery_exhausted
        assert fleet.peak_temperature_c == pytest.approx(single.peak_temperature_c)

    def test_difficulty_aware_beats_round_robin_bursty(self):
        """The PR acceptance contract, at test scale."""
        base = dict(platforms=("tx2-gpu", "agx-gpu"), pattern="bursty", duration_s=8.0)
        rr = run_fleet_cell(FleetSpec(router="round_robin", **base))
        da = run_fleet_cell(FleetSpec(router="difficulty_aware", **base))
        assert da.latency_ms_p95 <= rr.latency_ms_p95
        assert da.total_energy_j <= rr.total_energy_j
        assert "vs" in render_router_comparison(rr, da)

    def test_thermal_and_battery_scenarios(self):
        thermal = run_fleet_cell(
            FleetSpec(platforms=("tx2-gpu", "agx-gpu"), scenario="thermal-cap",
                      duration_s=4.0)
        )
        assert thermal.peak_temperature_c > 0
        battery = run_fleet_cell(
            FleetSpec(platforms=("tx2-gpu", "agx-gpu"), scenario="battery-budget",
                      duration_s=4.0)
        )
        assert battery.battery_budget_j > 0
        assert battery.battery_spent_j > 0


# -------------------------------------------------------------- determinism
class TestDeterminism:
    """Same seed ⇒ bit-identical telemetry, however the cells are executed."""

    SPECS = [
        FleetSpec(platforms=("tx2-gpu", "agx-gpu"), pattern="bursty",
                  router=router, duration_s=4.0)
        for router in ("round_robin", "difficulty_aware")
    ]

    def test_rerun_is_bit_identical(self):
        assert run_fleet_cell(self.SPECS[0]) == run_fleet_cell(self.SPECS[0])

    def test_thread_executor_matches_serial(self):
        serial = fleet_sweep(self.SPECS, executor="serial")
        threaded = fleet_sweep(self.SPECS, workers=2, executor="thread")
        assert serial == threaded

    def test_warm_cache_matches_cold(self, tmp_path):
        cold = fleet_sweep(self.SPECS, cache_dir=str(tmp_path))
        warm = fleet_sweep(self.SPECS, cache_dir=str(tmp_path))
        assert cold == warm
        cache = ResultCache(tmp_path)
        assert cache.stats("fleet").misses == 0  # second sweep fully warm
        assert len(cache) == 2

    def test_single_device_sweep_matches_across_executors(self, tmp_path):
        specs = [
            ServingSpec(pattern="bursty", policy=policy, duration_s=4.0)
            for policy in ("static", "adaptive")
        ]
        from repro.serving.harness import sweep

        serial = sweep(specs, executor="serial")
        threaded = sweep(specs, workers=2, executor="thread")
        assert serial == threaded
        cold = sweep(specs, cache_dir=str(tmp_path))
        warm = sweep(specs, cache_dir=str(tmp_path))
        assert cold == warm == serial


# ---------------------------------------------------------- deployed designs
class TestDeployedDesign:
    def test_design_from_search_result(self, tiny_search_result, searched_design):
        best = tiny_search_result.selected_model()
        assert searched_design.backbone == best.payload["config"]
        assert searched_design.positions == best.payload["evaluation"].placement.positions
        assert searched_design.core_ghz == best.payload["evaluation"].setting.core_ghz
        assert 0 < searched_design.backbone_accuracy <= 1
        assert searched_design.platform == "tx2-gpu"

    def test_design_round_trips_through_json(self, tmp_path, searched_design):
        path = save_design(searched_design, tmp_path / "design.json", extra={"note": "x"})
        assert load_design(path) == searched_design
        # A bare design payload (no wrapper) also loads.
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(json.loads(path.read_text())["design"]))
        assert load_design(bare) == searched_design

    def test_design_validates_positions(self):
        from repro.baselines.attentivenas import attentivenas_model

        backbone = attentivenas_model("a0")
        with pytest.raises(ValueError):
            DeployedDesign(
                backbone=backbone,
                positions=(1,),  # below MIN_EXIT_POSITION
                core_ghz=1.0, emc_ghz=1.0, backbone_accuracy=0.8,
            )
        with pytest.raises(ValueError, match="backbone_accuracy"):
            DeployedDesign(
                backbone=backbone,
                positions=(6,),
                core_ghz=1.0, emc_ghz=1.0, backbone_accuracy=80.0,  # percent, not fraction
            )

    def test_design_from_individual_requires_payload(self):
        from repro.search.individual import Individual

        bare = Individual(genome=np.zeros(3, dtype=np.int64))
        with pytest.raises(KeyError):
            design_from_individual(bare)


# --------------------------------------------------- search → serve round trip
class TestSearchToServe:
    """End-to-end regression: the *searched* design is what gets served."""

    def test_serving_stack_mounts_searched_design(self, searched_design):
        spec = ServingSpec(duration_s=3.0, design=searched_design)
        stack = build_serving_stack(spec)
        assert stack.placement.positions == searched_design.positions
        assert stack.evaluator.config == searched_design.backbone
        assert stack.synthesizer.backbone_accuracy == pytest.approx(
            searched_design.backbone_accuracy
        )

    def test_single_device_serves_searched_design(self, searched_design):
        report = run_serving_cell(ServingSpec(duration_s=3.0, design=searched_design))
        # The report names the searched design, not the default mount ...
        assert report.model.startswith("searched:")
        assert searched_design.backbone.key in report.model
        # ... and its exit histogram matches the searched placement.
        assert len(report.exit_usage) == searched_design.num_exits + 1
        assert sum(report.exit_usage) == pytest.approx(1.0)
        assert report.num_requests > 0
        assert report.latency_ms_p50 <= report.latency_ms_p95 <= report.latency_ms_p99
        assert report.energy_per_request_j > 0

    def test_fleet_serves_searched_design(self, searched_design):
        report = run_fleet_cell(
            FleetSpec(platforms=("tx2-gpu", "agx-gpu"), duration_s=3.0,
                      design=searched_design)
        )
        assert report.model.startswith("searched:")
        assert len(report.exit_usage) == searched_design.num_exits + 1
        assert sum(d.requests for d in report.devices) == report.num_requests

    def test_design_changes_cache_key(self, tmp_path, searched_design):
        from repro.serving.harness import cell_cache_key

        cache = ResultCache(tmp_path)
        default = cell_cache_key(cache, ServingSpec(duration_s=3.0))
        mounted = cell_cache_key(cache, ServingSpec(duration_s=3.0, design=searched_design))
        assert default != mounted

    def test_cli_round_trip(self, tmp_path, capsys):
        """`repro search --out` → `repro serve --from-result --fleet`."""
        from repro.__main__ import main

        out = tmp_path / "design.json"
        assert main([
            "search", "--budget", "tiny", "--seed", "3", "--out", str(out),
        ]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main([
            "serve", "--from-result", str(out), "--fleet", "tx2,xavier",
            "--router", "difficulty_aware", "--trace", "bursty",
            "--duration-s", "2",
        ]) == 0
        output = capsys.readouterr().out
        assert "mounting searched:" in output
        assert "difficulty_aware router" in output
        assert "tx2-gpu" in output and "agx-gpu" in output

    def test_cli_rejects_bad_design_file(self, tmp_path, capsys):
        from repro.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"a design\"}")
        with pytest.raises(SystemExit):
            main(["serve", "--from-result", str(bad), "--duration-s", "1"])
        assert "cannot load design" in capsys.readouterr().err


# ----------------------------------------------------------------------- CLI
class TestFleetCli:
    def test_serve_fleet_compares_routers(self, capsys):
        from repro.__main__ import main

        assert main([
            "serve", "--fleet", "tx2,xavier", "--router", "all",
            "--duration-s", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "difficulty_aware vs round_robin" in out
        assert "least_backlog vs round_robin" in out

    def test_serve_fleet_writes_json(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "fleet.json"
        assert main([
            "serve", "--fleet", "tx2-gpu,agx-gpu", "--router", "difficulty_aware",
            "--trace", "bursty", "--duration-s", "2", "--json", str(path),
        ]) == 0
        payload = json.loads(path.read_text())
        assert payload["specs"][0]["router"] == "difficulty_aware"
        assert payload["specs"][0]["platforms"] == ["tx2-gpu", "agx-gpu"]
        assert payload["reports"][0]["num_requests"] > 0
        assert len(payload["reports"][0]["devices"]) == 2

    def test_serve_fleet_rejects_unknown_platform(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["serve", "--fleet", "tx2,gamecube", "--duration-s", "1"])
        assert "valid platforms" in capsys.readouterr().err


# ------------------------------------------------------------- cache codec
class TestFleetCache:
    def test_fleet_report_json_round_trip(self, tmp_path):
        from repro.serving.fleet import FleetReport

        cache = ResultCache(tmp_path)
        spec = FleetSpec(platforms=("tx2-gpu", "agx-gpu"), duration_s=3.0)
        report = run_fleet_cell(spec)
        key = fleet_cache_key(cache, spec)
        path = cache.put(key, report)
        assert path.suffix == ".json"  # plain-data report, human-readable
        rebuilt = cache.get(key, cls=FleetReport)
        assert rebuilt == report
        assert rebuilt.devices[0] == report.devices[0]

    def test_sweep_dedupes_identical_specs(self, tmp_path):
        spec = FleetSpec(platforms=("tx2-gpu",), duration_s=3.0)
        reports = fleet_sweep([spec, spec], cache_dir=str(tmp_path))
        assert reports[0] == reports[1]
        assert len(ResultCache(tmp_path)) == 1


# ----------------------------------------------------- load split / stacks
class TestFleetStacks:
    def test_explicit_rate_splits_by_capacity(self):
        spec = FleetSpec(platforms=("tx2-gpu", "agx-gpu"), rate_hz=60.0)
        stacks = build_fleet_stacks(spec)
        assert sum(s.rate_hz for s in stacks) == pytest.approx(60.0)
        assert stacks[1].rate_hz > stacks[0].rate_hz  # agx is the stronger device

    def test_stream_covers_whole_trace(self):
        spec = FleetSpec(platforms=("tx2-gpu", "agx-gpu"), duration_s=3.0)
        stacks = build_fleet_stacks(spec)
        trace, stream = build_fleet_trace_and_stream(spec, stacks)
        assert stream.final_logits.shape[0] == trace.num_requests
        # Identical mounts ⇒ identical placements on every lane.
        assert len({s.placement.positions for s in stacks}) == 1


# ----------------------------------------------------------- latent-bug pins
class TestFleetRegressions:
    def test_exit_head_mismatch_raises(self):
        """Regression: a stream with the wrong number of exit heads used to
        crash deep inside a lane's compiled executor; the fleet now refuses
        upfront, same as the single-device simulator."""
        from repro.serving.fleet import FleetSimulator
        from repro.serving.stream import ServingStream

        spec = FleetSpec(platforms=("tx2-gpu", "agx-gpu"), duration_s=3.0)
        stacks = build_fleet_stacks(spec)
        trace, stream = build_fleet_trace_and_stream(spec, stacks)
        wrong = ServingStream(
            exit_logits=stream.exit_logits[:-1],
            final_logits=stream.final_logits,
            labels=stream.labels,
        )
        with pytest.raises(ValueError, match="exit heads"):
            FleetSimulator(spec, stacks).run(trace, wrong)


# ---------------------------------------------------------- engine identity
class TestEngineIdentity:
    """The block-routed indexed engine reproduces the reference loop
    field-for-field across routers, admission settings, and SLO mixes."""

    @pytest.mark.parametrize(
        "router,max_queue,bypass,crit",
        [
            ("round_robin", None, True, 0.0),
            ("round_robin", 2, False, 1.0),
            ("least_backlog", 6, True, 0.3),
            ("least_backlog", None, True, 1.0),
            ("difficulty_aware", None, True, 0.0),
            ("difficulty_aware", 6, True, 0.3),
            ("difficulty_aware", 2, False, 1.0),
        ],
    )
    def test_indexed_matches_reference(self, router, max_queue, bypass, crit):
        base = dict(
            platforms=("tx2-gpu", "agx-gpu"),
            pattern="bursty",
            router=router,
            duration_s=3.0,
            critical_fraction=crit,
            admission_max_queue=max_queue,
            admission_critical_bypass=bypass,
        )
        ref = run_fleet_cell(FleetSpec(engine="reference", **base))
        idx = run_fleet_cell(FleetSpec(engine="indexed", **base))
        assert idx == ref

    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        pattern=st.sampled_from(("poisson", "bursty")),
        router=st.sampled_from(
            ("round_robin", "least_backlog", "difficulty_aware")
        ),
        crit=st.sampled_from((0.0, 0.25, 1.0)),
        max_queue=st.sampled_from((None, 3, 8)),
    )
    def test_random_cells_identical(self, seed, pattern, router, crit, max_queue):
        base = dict(
            platforms=("tx2-gpu", "agx-gpu"),
            pattern=pattern,
            router=router,
            seed=seed,
            duration_s=2.0,
            critical_fraction=crit,
            admission_max_queue=max_queue,
        )
        ref = run_fleet_cell(FleetSpec(engine="reference", **base))
        idx = run_fleet_cell(FleetSpec(engine="indexed", **base))
        assert idx == ref


# ------------------------------------------------------------ band caching
class TestBandCache:
    def test_route_does_not_rebuild_bands_per_call(self):
        """Band edges are cached per fleet composition: steady-state route()
        calls never re-read lane capacities (the sort key), so there is no
        per-call sorting."""

        class _CountingLane:
            def __init__(self, index, capacity):
                self.index = index
                self._capacity = capacity
                self.capacity_reads = 0
                self.queue_depth = 0
                self.t_free = 0.0

            @property
            def reference_capacity_rps(self):
                self.capacity_reads += 1
                return self._capacity

            def estimated_wait_s(self, now_s):
                return 0.0

        lanes = [_CountingLane(0, 10.0), _CountingLane(1, 30.0)]
        router = DifficultyAwareRouter(lanes, slo_s=0.075)
        baseline = [lane.capacity_reads for lane in lanes]
        for k in range(64):
            router.route(k / 64.0, BEST_EFFORT, 0.0, lanes)
        assert [lane.capacity_reads for lane in lanes] == baseline

    def test_band_cache_rebuilds_on_new_fleet(self):
        lanes = [_FakeLane(0, 10.0, 0.1, 0.0), _FakeLane(1, 30.0, 0.3, 0.0)]
        router = DifficultyAwareRouter(lanes, slo_s=0.075)
        assert router.banded_lane(0.9) == 1
        other = [_FakeLane(0, 30.0, 0.3, 0.0), _FakeLane(1, 10.0, 0.1, 0.0)]
        assert router.route(0.9, BEST_EFFORT, 0.0, other) == 0


# ------------------------------------------------------------ work stealing
class TestWorkStealing:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            FleetSpec(platforms=("tx2-gpu",), engine="warp")

    def test_steal_requires_indexed_engine(self):
        with pytest.raises(ValueError, match="indexed engine"):
            FleetSpec(platforms=("tx2-gpu",), engine="reference", steal=True)

    def test_steal_cell_stays_consistent(self):
        report = run_fleet_cell(
            FleetSpec(
                platforms=("tx2-gpu", "agx-gpu"),
                pattern="bursty",
                duration_s=5.0,
                utilization=0.95,
                steal=True,
            )
        )
        assert report.num_stolen >= 0
        assert sum(d.stolen_in for d in report.devices) == report.num_stolen
        assert sum(d.stolen_out for d in report.devices) == report.num_stolen
        assert sum(d.requests for d in report.devices) == report.num_requests
        assert report.latency_ms_p50 <= report.latency_ms_p95 <= report.latency_ms_p99
