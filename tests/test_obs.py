"""Observability layer: recorder semantics, collectors, and the invariants.

The two load-bearing guarantees are asserted here directly:

* **Bit-identity** — recording a trace never changes a result (fig5 report
  bytes and serving reports are equal with tracing on and off).
* **Near-zero disabled cost** — every instrumentation point runs
  unconditionally, so the disabled fast path must be negligible next to a
  single dynamic evaluation (the hottest instrumented call).

Plus the cross-process plumbing: worker spans/counters and per-worker cache
hit/miss deltas ride home through the executor result channel, so the
parent's trace and ``cache.stats()`` stay truthful under ``--executor
process``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import threading
import time

import pytest

from repro.engine.cache import ResultCache
from repro.engine.service import EvalTask, EvaluationService
from repro.engine.tasks import run_spec, task_spec
from repro.obs import trace
from repro.obs.cli import main as trace_cli
from repro.obs.cli import traced_run
from repro.obs.collect import Envelope, TracedCall, absorb
from repro.obs.export import (
    counter_rollup,
    load_jsonl,
    render_summary,
    span_tree,
    to_chrome_trace,
    write_jsonl,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    validate_manifest,
)
from repro.obs.trace import HISTOGRAM_SAMPLE_CAP, Histogram, Recorder


@pytest.fixture(autouse=True)
def clean_tracing_state():
    """Tracing must be off on entry and is force-disabled on exit."""
    assert trace.active() is None
    yield
    trace.uninstall()


def _boom():
    raise RuntimeError("task failed on purpose")


def _worker_cache_traffic(directory: str, n: int) -> int:
    """Pure task: drive a worker-local ResultCache (misses, puts, then hits)."""
    cache = ResultCache(directory)
    for i in range(n):
        key = cache.key("workerns", item=i)
        if cache.get(key, default=None) is None:
            cache.put(key, {"item": i})
        cache.get(key, default=None)  # guaranteed hit
    return n


def _worker_cache_traffic_with_flush(directory: str, n: int) -> int:
    """Like :func:`_worker_cache_traffic`, but the worker also tears down a
    flushing owner — the in-worker service-close path a sharded sweep takes."""
    cache = ResultCache(directory)
    for i in range(n):
        key = cache.key("flushns", item=i)
        if cache.get(key, default=None) is None:
            cache.put(key, {"item": i})
    cache.flush_session_stats()  # must be muted: the envelope owns the delta
    return n


class TestHistogram:
    def test_moments_and_percentiles(self):
        hist = Histogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.add(value)
        assert hist.count == 4
        assert hist.mean == pytest.approx(2.5)
        assert hist.min == 1.0 and hist.max == 4.0
        assert hist.percentile(0.0) == 1.0
        assert hist.percentile(1.0) == 4.0

    def test_sample_cap_keeps_exact_moments(self):
        hist = Histogram()
        n = HISTOGRAM_SAMPLE_CAP + 500
        for i in range(n):
            hist.add(float(i))
        assert len(hist.samples) == HISTOGRAM_SAMPLE_CAP
        assert hist.count == n  # moments never saturate
        assert hist.max == float(n - 1)

    def test_merge_payload(self):
        a, b = Histogram(), Histogram()
        a.add(1.0)
        b.add(3.0)
        a.merge_payload(b.as_payload())
        assert a.count == 2 and a.mean == pytest.approx(2.0) and a.max == 3.0
        a.merge_payload(Histogram().as_payload())  # empty merge is a no-op
        assert a.count == 2


class TestRecorder:
    def test_span_nesting_links_parents(self):
        recorder = Recorder()
        with recorder.span("outer"):
            with recorder.span("inner"):
                pass
        inner, outer = recorder.events  # inner closes first
        assert inner["name"] == "inner" and outer["name"] == "outer"
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["wall_s"] <= outer["wall_s"]

    def test_span_stacks_are_thread_local(self):
        recorder = Recorder()
        seen = {}

        def worker():
            with recorder.span("in-thread"):
                pass
            seen["done"] = True

        with recorder.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["done"]
        by_name = {event["name"]: event for event in recorder.events}
        # the other thread's span must NOT be parented under "main"
        assert by_name["in-thread"]["parent"] is None
        assert by_name["in-thread"]["tid"] != by_name["main"]["tid"]

    def test_error_is_flagged_and_propagates(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("doomed"):
                raise ValueError("nope")
        (event,) = recorder.events
        assert event["error"] == "ValueError"

    def test_attrs_and_set(self):
        recorder = Recorder()
        with recorder.span("job", size=3) as span:
            span.set(extra="yes")
        (event,) = recorder.events
        assert event["attrs"] == {"size": 3, "extra": "yes"}

    def test_counters_and_histograms(self):
        recorder = Recorder()
        recorder.count("evals")
        recorder.count("evals", 4)
        recorder.observe("wait_s", 0.5)
        assert recorder.counters["evals"] == 5
        assert recorder.histograms["wait_s"].count == 1

    def test_merge_folds_payload(self):
        parent, worker = Recorder(), Recorder()
        with worker.span("remote"):
            pass
        worker.count("evals", 2)
        worker.observe("wait_s", 0.1)
        parent.count("evals", 1)
        parent.merge(worker.export_payload())
        assert parent.counters["evals"] == 3
        assert parent.histograms["wait_s"].count == 1
        assert [event["name"] for event in parent.events] == ["remote"]


class TestActivation:
    def test_module_api_noop_when_off(self):
        assert trace.span("x") is trace.span("y")  # shared no-op singleton
        trace.count("x")  # must not raise
        trace.observe("x", 1.0)
        with trace.span("x") as span:
            span.set(a=1)

    def test_install_routes_module_calls(self):
        recorder = Recorder()
        trace.install(recorder)
        try:
            with trace.span("global"):
                trace.count("hits")
        finally:
            trace.uninstall()
        assert recorder.counters["hits"] == 1
        assert recorder.events[0]["name"] == "global"
        assert trace.active() is None

    def test_recording_overrides_global_per_thread(self):
        global_rec, local_rec = Recorder(), Recorder()
        trace.install(global_rec)
        try:
            with trace.recording(local_rec):
                trace.count("seen")
                assert trace.active() is local_rec
            assert trace.active() is global_rec
        finally:
            trace.uninstall()
        assert local_rec.counters == {"seen": 1}
        assert global_rec.counters == {}


class TestDisabledOverhead:
    def test_noop_path_is_under_two_percent_of_a_dynamic_eval(
        self, static_evaluator, surrogate
    ):
        from repro.accuracy.exit_model import BackboneExitOracle
        from repro.baselines.attentivenas import attentivenas_model
        from repro.eval.dynamic import DynamicEvaluator
        from repro.exits.placement import ExitPlacement
        from repro.hardware.dvfs import DvfsSpace
        from repro.hardware.energy import EnergyModel

        a3 = attentivenas_model("a3")
        static = static_evaluator.evaluate(a3)
        oracle = BackboneExitOracle(
            a3.key, a3.total_mbconv_layers, surrogate.accuracy_fraction(a3), seed=0
        )
        evaluator = DynamicEvaluator(
            config=a3,
            cost=static_evaluator.cost(a3),
            oracle=oracle,
            energy_model=EnergyModel(static_evaluator.platform),
            baseline_energy_j=static.energy_j,
            baseline_latency_s=static.latency_s,
        )
        setting = DvfsSpace(static_evaluator.platform).default_setting()
        layers = a3.total_mbconv_layers

        # Fresh (placement, setting) keys so every timed call is a real
        # evaluation, not a memo hit.
        placements = [
            ExitPlacement(layers, (5 + i, layers - 1)) for i in range(layers - 7)
        ]
        evaluator.evaluate(placements[0], setting)  # warm tables/oracle once
        eval_cost = min(
            _timed(lambda p=p: evaluator.evaluate(p, setting))
            for p in placements[1:]
        )

        # Disabled instrumentation: per-call cost of count(), net of the
        # timing loop itself (what the evaluate() miss path actually pays:
        # two count() calls and zero spans).
        n = 50_000

        def count_loop():
            for _ in range(n):
                trace.count("bench.counter")

        def bare_loop():
            for _ in range(n):
                pass

        loop_cost = min(_timed(bare_loop) for _ in range(3))
        count_cost = min(_timed(count_loop) for _ in range(3))
        per_call = max(count_cost - loop_cost, 0.0) / n
        # Two count() calls per evaluation, with 2x headroom for CI jitter.
        assert 2 * 2 * per_call < 0.02 * eval_cost, (
            f"disabled count() {per_call * 1e9:.0f} ns/call vs "
            f"evaluate {eval_cost * 1e6:.1f} us"
        )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


class TestJsonlRoundTrip:
    def _recorded(self) -> Recorder:
        recorder = Recorder()
        with recorder.span("root", phase="demo"):
            with recorder.span("child"):
                recorder.count("evals", 3)
                recorder.observe("wait_s", 0.25)
        return recorder

    def test_parent_child_reconstruction(self, tmp_path):
        recorder = self._recorded()
        path = write_jsonl(recorder, tmp_path / "t.jsonl", meta={"command": "demo"})
        payload = load_jsonl(path)
        assert payload["meta"]["command"] == "demo"
        assert payload["counters"] == {"evals": 3}
        assert payload["histograms"]["wait_s"]["count"] == 1

        tree = span_tree(payload["events"])
        (root,) = tree[(recorder.pid, None)]
        assert root["name"] == "root" and root["attrs"] == {"phase": "demo"}
        (child,) = tree[(recorder.pid, root["id"])]
        assert child["name"] == "child"

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = write_jsonl(self._recorded(), tmp_path / "t.jsonl")
        text = path.read_text()
        path.write_text(text + "{truncated garbage\n")
        payload = load_jsonl(path)
        assert len(payload["events"]) == 2

    def test_chrome_trace_shape(self, tmp_path):
        payload = load_jsonl(write_jsonl(self._recorded(), tmp_path / "t.jsonl"))
        chrome = to_chrome_trace(payload)
        assert set(chrome) == {"traceEvents", "displayTimeUnit"}
        assert len(chrome["traceEvents"]) == 2
        base = min(entry["ts"] for entry in chrome["traceEvents"])
        assert base == 0.0  # rebased to the earliest span
        for entry in chrome["traceEvents"]:
            assert entry["ph"] == "X"
            assert entry["dur"] >= 0.0

    def test_render_summary_mentions_everything(self, tmp_path):
        payload = load_jsonl(write_jsonl(self._recorded(), tmp_path / "t.jsonl"))
        text = render_summary(payload)
        for needle in ("root", "child", "evals", "wait_s"):
            assert needle in text
        assert render_summary({"events": [], "counters": {}}) == "empty trace"

    def test_counter_rollup_derives_hit_rates(self):
        recorder = Recorder()
        recorder.count("cache.spec.hits", 3)
        recorder.count("cache.spec.misses", 1)
        recorder.count("cache.oracle.puts", 2)
        rollup = counter_rollup(recorder)
        assert rollup["cache_hit_rates"]["spec"] == pytest.approx(0.75)
        assert rollup["cache_hit_rates"]["oracle"] == 0.0
        assert rollup["counters"]["cache.spec.hits"] == 3


class TestManifest:
    def _manifest_payload(self) -> dict:
        recorder = Recorder()
        with recorder.span("work"):
            recorder.count("cache.spec.hits", 2)
        manifest = build_manifest(
            recorder,
            command="repro test",
            config={"budget": "tiny"},
            seed=3,
            platforms=["tx2-gpu"],
            started_at=123.0,
            wall_s=1.5,
        )
        return manifest.to_json()

    def test_build_and_validate(self):
        payload = self._manifest_payload()
        validate_manifest(payload)  # must not raise
        assert payload["schema_version"] == MANIFEST_SCHEMA_VERSION
        assert payload["cache_namespaces"] == ["spec"]
        assert payload["platforms"] == ["tx2-gpu"]
        assert payload["counters"]["cache.spec.hits"] == 2
        assert "work" in payload["spans"]
        assert len(payload["config_fingerprint"]) == 32

    def test_fingerprint_is_stable_and_discriminating(self):
        from repro.obs.manifest import config_fingerprint

        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_validation_rejects_bad_payloads(self):
        payload = self._manifest_payload()
        del payload["command"]
        payload["seed"] = "seven"
        with pytest.raises(ValueError) as excinfo:
            validate_manifest(payload)
        message = str(excinfo.value)
        assert "command" in message and "seed" in message

        newer = self._manifest_payload()
        newer["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer than supported"):
            validate_manifest(newer)

        with pytest.raises(ValueError, match="JSON object"):
            validate_manifest([1, 2])


class TestTracedRunCli:
    def test_traced_run_writes_trace_and_valid_manifest(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        with traced_run(str(out), command="repro demo", seed=9) as recorder:
            with trace.span("unit"):
                trace.count("cache.spec.hits")
        assert recorder is not None
        assert trace.active() is None  # uninstalled on exit

        payload = load_jsonl(out)
        assert payload["meta"]["seed"] == 9
        assert [event["name"] for event in payload["events"]] == ["unit"]

        manifest = json.loads(out.with_suffix(".manifest.json").read_text())
        validate_manifest(manifest)
        assert manifest["command"] == "repro demo"
        assert manifest["cache_namespaces"] == ["spec"]
        assert "trace written" in capsys.readouterr().out

    def test_traced_run_none_is_a_noop(self):
        with traced_run(None, command="whatever") as recorder:
            assert recorder is None
            assert trace.active() is None

    def test_traced_run_rejects_nesting(self, tmp_path):
        with traced_run(str(tmp_path / "a.jsonl"), command="outer"):
            with pytest.raises(RuntimeError, match="already active"):
                with traced_run(str(tmp_path / "b.jsonl"), command="inner"):
                    pass

    def test_cli_summary_top_and_export(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        with traced_run(str(out), command="repro demo"):
            with trace.span("heavy"):
                pass
        capsys.readouterr()

        assert trace_cli(["summary", str(out)]) == 0
        assert "heavy" in capsys.readouterr().out
        assert trace_cli(["top", str(out), "--limit", "1"]) == 0
        capsys.readouterr()

        chrome = tmp_path / "chrome.json"
        assert trace_cli(["export", str(out), "--chrome", str(chrome)]) == 0
        assert json.loads(chrome.read_text())["traceEvents"]

        with pytest.raises(SystemExit):
            trace_cli(["summary", str(tmp_path / "missing.jsonl")])


class TestCollector:
    def test_traced_call_mirrors_codec_flag(self):
        task = task_spec("table2-dvfs", platform="tx2-gpu")
        wrapped = TracedCall(run_spec, record=True)
        assert wrapped.is_task_codec == bool(getattr(run_spec, "is_task_codec", False))

        from repro.engine.tasks import spec_task

        codec_fn = spec_task(task).fn
        assert TracedCall(codec_fn, record=False).is_task_codec == bool(
            getattr(codec_fn, "is_task_codec", False)
        )

    def test_unrecorded_in_parent_is_passthrough(self):
        wrapped = TracedCall(len, record=False)
        assert wrapped((1, 2, 3)) == 3  # raw result, no Envelope

    def test_recorded_call_ships_an_envelope(self):
        wrapped = TracedCall(len, record=True)
        output = wrapped((1, 2, 3))
        assert isinstance(output, Envelope)
        assert output.result == 3
        assert output.pid == os.getpid()
        names = [event["name"] for event in output.payload["events"]]
        assert names == ["worker.execute"]
        assert output.payload["events"][0]["attrs"]["task"] == "len"

    def test_absorb_merges_into_active_recorder(self):
        output = TracedCall(len, record=True)((1,))
        recorder = Recorder()
        with trace.recording(recorder):
            assert absorb(output) == 1
        assert [event["name"] for event in recorder.events] == ["worker.execute"]
        assert recorder.histograms["engine.queue_wait_s"].count == 1

    def test_absorb_passthrough_and_foreign_deltas(self, tmp_path):
        assert absorb("bare") == "bare"
        cache = ResultCache(tmp_path / "cache")
        same_pid = Envelope(
            result=1, cache_deltas={"ns": {"hits": 5}}, pid=os.getpid()
        )
        absorb(same_pid, cache)
        assert cache.stats("ns").hits == 0  # own-process deltas already counted
        foreign = Envelope(
            result=1,
            cache_deltas={"ns": {"hits": 5, "misses": 2, "puts": 2}},
            pid=os.getpid() + 1,
        )
        absorb(foreign, cache)
        assert cache.stats("ns").hits == 5
        assert cache.stats("ns").misses == 2
        assert cache.stats("ns").puts == 2


class TestProcessRoundTrip:
    def test_worker_events_and_counters_merge_home(self):
        from repro.serving.harness import ServingSpec

        specs = [
            task_spec(
                "serving-cell",
                spec=ServingSpec(pattern="poisson", duration_s=1.0, seed=seed),
            )
            for seed in (3, 4)
        ]
        inline = [run_spec(spec) for spec in specs]

        recorder = Recorder()
        trace.install(recorder)
        try:
            with EvaluationService(executor="process", workers=2) as service:
                pooled = service.evaluate_batch(
                    [EvalTask(fn=run_spec, args=(spec,)) for spec in specs]
                )
        finally:
            trace.uninstall()

        assert pooled == inline  # tracing must not perturb results
        workers = [e for e in recorder.events if e["name"] == "worker.execute"]
        assert len(workers) == 2
        assert all(event["pid"] != os.getpid() for event in workers)
        assert all(event["attrs"]["task"] == "serving-cell" for event in workers)
        # spans and counters produced inside the workers merged back home
        runs = [e for e in recorder.events if e["name"] == "serving.run"]
        assert len(runs) == 2 and all(e["pid"] != os.getpid() for e in runs)
        assert recorder.counters["serving.batches"] > 0
        assert recorder.histograms["engine.queue_wait_s"].count == 2
        assert recorder.counters["engine.tasks_submitted"] == 2
        assert recorder.counters["engine.tasks_completed"] == 2

    def test_worker_cache_deltas_merge_into_parent_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "shared")
        with EvaluationService(executor="process", workers=2, cache=cache) as service:
            results = service.evaluate_batch(
                [
                    EvalTask(fn=_worker_cache_traffic, args=(str(cache.directory), 4)),
                    EvalTask(fn=_worker_cache_traffic, args=(str(cache.directory), 4)),
                ]
            )
        assert results == [4, 4]
        # Two workers raced the same 4 keys: every lookup and write that
        # happened in *their* cache instances is visible here.
        stats = cache.stats("workerns")
        assert stats.hits + stats.misses == 16  # 2 tasks x 4 keys x 2 gets
        assert stats.puts == stats.misses  # each miss was followed by a put
        assert 4 <= stats.misses <= 8  # >= once per key, <= cold in both workers

        # ... and the session sidecar records them for `repro cache stats`.
        session = cache.session_stats()
        assert session["workerns"].hits == stats.hits
        assert session["workerns"].puts == stats.puts

    def test_worker_side_flush_does_not_double_count(self, tmp_path):
        cache = ResultCache(tmp_path / "shared")
        with EvaluationService(executor="process", workers=2, cache=cache) as service:
            results = service.evaluate_batch(
                [
                    EvalTask(
                        fn=_worker_cache_traffic_with_flush,
                        args=(str(cache.directory), 3),
                    ),
                    EvalTask(
                        fn=_worker_cache_traffic_with_flush,
                        args=(str(cache.directory), 3),
                    ),
                ]
            )
        assert results == [3, 3]
        # The workers flushed their own session stats mid-task, but the
        # envelope already owns that traffic: the sidecar must show each
        # lookup exactly once, matching what the parent cache merged.
        stats = cache.stats("flushns")
        assert stats.hits + stats.misses == 6  # 2 tasks x 3 keys x 1 get
        assert stats.puts == stats.misses
        session = cache.session_stats()
        assert session["flushns"].hits == stats.hits
        assert session["flushns"].misses == stats.misses
        assert session["flushns"].puts == stats.puts


class TestServiceLedger:
    def test_submitted_completed_counts(self, tmp_path):
        with EvaluationService() as service:
            service.evaluate_batch(
                [EvalTask(fn=len, args=((1, 2),)), EvalTask(fn=len, args=((),))]
            )
        ledger = service.stats.as_dict()
        assert ledger["submitted"] == 2
        assert ledger["completed"] == 2
        assert ledger["failed"] == 0 and ledger["cancelled"] == 0
        assert service.stats.submitted == (
            service.stats.completed + service.stats.failed + service.stats.cancelled
        )

    def test_failed_batch_is_charged(self):
        service = EvaluationService()
        with pytest.raises(RuntimeError, match="on purpose"):
            service.evaluate_batch([EvalTask(fn=_boom)])
        assert service.stats.submitted == 1
        assert service.stats.failed == 1
        assert service.stats.completed == 0
        service.close()

    def test_cache_hits_skip_the_ledger(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        from repro.engine.tasks import spec_task

        def keyed_task():
            return spec_task(task_spec("table2-dvfs", platform="tx2-gpu"), cache=cache)

        with EvaluationService(cache=cache) as service:
            service.evaluate_batch([keyed_task()])
            service.evaluate_batch([keyed_task()])  # pure cache read
        assert service.stats.submitted == 1
        assert service.stats.completed == 1
        assert service.stats.cache_hits == 1


class TestSessionStatsSidecar:
    def test_flush_is_idempotent_and_aggregates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key("ns", item=1)
        cache.get(key, default=None)  # miss
        cache.put(key, {"item": 1})
        cache.get(key, default=None)  # hit

        first = cache.flush_session_stats()
        assert first == {"ns": {"hits": 1, "misses": 1, "puts": 1}}
        assert cache.flush_session_stats() == {}  # nothing new

        cache.get(key, default=None)
        assert cache.flush_session_stats() == {"ns": {"hits": 1, "misses": 0, "puts": 0}}

        totals = cache.session_stats()
        assert totals["ns"].hits == 2
        assert totals["ns"].misses == 1
        assert totals["ns"].puts == 1

    def test_cache_stats_cli_shows_sessions(self, tmp_path, capsys):
        from repro.engine.cli import main as cache_cli

        cache = ResultCache(tmp_path / "cache")
        key = cache.key("ns", item=1)
        cache.get(key, default=None)
        cache.put(key, {"item": 1})
        cache.flush_session_stats()

        assert cache_cli(["stats", "--cache-dir", str(tmp_path / "cache")]) == 0
        out = capsys.readouterr().out
        assert "recorded sessions" in out
        assert "1 misses" in out and "1 puts" in out

    def test_clear_removes_the_sidecar(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cache.put(cache.key("ns", item=1), {"item": 1})
        cache.flush_session_stats()
        cache.clear()
        assert cache.session_stats() == {}


class TestBitIdentityAndCacheTruth:
    """The acceptance pair: tracing changes no bits; merged cache counters
    reconcile with the on-disk index after a process-executor fig5 run."""

    PLATFORMS = ("tx2-gpu", "agx-gpu")

    @pytest.fixture(scope="class")
    def nano_profile(self):
        from repro.experiments.config import Profile

        return Profile(
            name="nano-obs",
            outer_population=6,
            outer_generations=2,
            inner_population=6,
            inner_generations=2,
            ioe_candidates=1,
            oracle_samples=256,
            seed=11,
        )

    def test_fig5_process_run_traced_vs_untraced(self, nano_profile, tmp_path):
        from repro.experiments import fig5
        from repro.experiments.runner import clear_memo

        profile = dataclasses.replace(
            nano_profile,
            workers=2,
            executor="process",
            cache_dir=str(tmp_path / "cache"),
        )

        clear_memo()
        bare_text = fig5.render(fig5.run(profile, platforms=self.PLATFORMS))

        clear_memo()
        recorder = Recorder()
        trace.install(recorder)
        try:
            # Second run against the warm cache: results must be byte-equal
            # to the cold untraced run, proving both cache-replay fidelity
            # and that tracing changes no bits.
            traced_text = fig5.render(fig5.run(profile, platforms=self.PLATFORMS))
        finally:
            trace.uninstall()
        assert traced_text == bare_text

        # The warm run resolves both platform shards from the cache.
        counters = recorder.counters
        assert counters.get("cache.spec.hits", 0) == len(self.PLATFORMS)
        assert counters.get("cache.spec.misses", 0) == 0

        # Cold traced run into a fresh cache directory: every on-disk index
        # entry must be accounted for by a counted put — exactly for the
        # deterministic 'spec' namespace, and at least once for namespaces
        # where concurrent cold shards may race the same digest.
        clear_memo()
        cold_profile = dataclasses.replace(
            profile, cache_dir=str(tmp_path / "cold-cache")
        )
        cold = Recorder()
        trace.install(cold)
        try:
            cold_text = fig5.render(fig5.run(cold_profile, platforms=self.PLATFORMS))
        finally:
            trace.uninstall()
        assert cold_text == bare_text

        index = ResultCache(cold_profile.cache_dir).disk_stats()["namespaces"]
        assert set(index), "cold run wrote nothing to the cache"
        for namespace, row in index.items():
            puts = cold.counters.get(f"cache.{namespace}.puts", 0)
            misses = cold.counters.get(f"cache.{namespace}.misses", 0)
            if namespace == "spec":
                assert puts == row["entries"] == len(self.PLATFORMS)
            else:
                assert puts >= row["entries"]
            assert misses >= puts  # every write followed a recorded miss
        clear_memo()

    def test_serving_cell_traced_vs_untraced(self):
        from repro.serving.harness import ServingSpec, run_serving_cell

        spec = ServingSpec(pattern="poisson", duration_s=2.0, seed=3)
        bare = run_serving_cell(spec)

        recorder = Recorder()
        trace.install(recorder)
        try:
            traced = run_serving_cell(spec)
        finally:
            trace.uninstall()
        assert traced == bare  # dataclass equality: exact floats
        assert recorder.counters["serving.batches"] > 0
        assert recorder.counters["serving.governor_decisions"] > 0
        assert recorder.histograms["serving.batch_size"].count == (
            recorder.counters["serving.batches"]
        )
        spans = [event["name"] for event in recorder.events]
        assert spans.count("serving.run") == 1
