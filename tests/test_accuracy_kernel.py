"""Batched exit-oracle accuracy kernel: bit-identity and fusion contracts.

``BackboneExitOracle.evaluate_placements`` lowers a whole population's
ideal-mapping statistics to one stacked pass over the bit-packed column
matrix with shared-prefix reuse.  Its contract is absolute: every field of
every returned :class:`ExitEvaluation` equals the per-placement popcount
loop *bit for bit* — across population sizes (N=1, duplicates, heavily
overlapping prefixes), cross-batch prefix-cache reuse and LRU eviction
pressure — so search trajectories and golden artifacts are unchanged no
matter which kernel produced them.  Alongside it: the stacked
:class:`PopulationExitStats` rows, the fused-objectives memo of the
dynamic evaluator, ``evaluate_generation`` grouping, and the flag-on/off
equivalence of whole search engines (IOE, random search).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy.exit_model import BackboneExitOracle, _LruCache
from repro.arch.cost import estimate_cost
from repro.baselines.attentivenas import attentivenas_model
from repro.eval.dynamic import DynamicEvaluator
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import get_platform

PLATFORM_KEYS = ("tx2-gpu", "carmel-cpu")

_CONFIG = attentivenas_model("a3")
_LAYERS = _CONFIG.total_mbconv_layers


def _oracle(**kwargs) -> BackboneExitOracle:
    defaults = dict(
        backbone_key=_CONFIG.key,
        total_layers=_LAYERS,
        backbone_accuracy=0.87,
        seed=0,
        n_samples=512,
    )
    defaults.update(kwargs)
    return BackboneExitOracle(**defaults)


def _placement(positions) -> ExitPlacement:
    return ExitPlacement(_LAYERS, tuple(sorted(positions)))


def _placements_strategy():
    one = st.sets(
        st.integers(min_value=MIN_EXIT_POSITION, max_value=_LAYERS - 1),
        min_size=1,
        max_size=6,
    ).map(_placement)
    return st.lists(one, min_size=1, max_size=12)


def _assert_stats_identical(got, want):
    """Every field of an ExitEvaluation, compared bit for bit."""
    assert np.array_equal(got.n_i, want.n_i)
    assert np.array_equal(got.usage, want.usage)
    assert np.array_equal(got.dissimilarity, want.dissimilarity)
    assert got.final_accuracy == want.final_accuracy
    assert got.dynamic_accuracy == want.dynamic_accuracy
    head_g, tail_g = got.usage_split
    head_w, tail_w = want.usage_split
    assert np.array_equal(head_g, head_w) and tail_g == tail_w


class TestLruCache:
    def test_eviction_order_and_counters(self):
        cache = _LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b" (least recent)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["hits"] == 3 and stats["misses"] == 1
        assert stats["size"] == 2 and stats["maxsize"] == 2

    def test_peek_uncounted(self):
        cache = _LruCache(4)
        cache.put("a", 1)
        assert cache.peek("a") == 1 and cache.peek("x") is None
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_stores_falsy_values(self):
        cache = _LruCache(4)
        cache.put("zero", 0)
        assert cache.get("zero") == 0


class TestBatchedOracleBitIdentity:
    """evaluate_placements == [evaluate_placement(p) ...], bitwise."""

    @settings(max_examples=30, deadline=None)
    @given(placements=_placements_strategy())
    def test_matches_reference_oracle(self, placements):
        batched = _oracle()
        reference = _oracle(use_batched_stats=False)
        got = batched.evaluate_placements(placements)
        want = reference.evaluate_placements(placements)
        for g, w in zip(got, want):
            _assert_stats_identical(g, w)

    def test_single_placement(self):
        batched = _oracle()
        placement = _placement([MIN_EXIT_POSITION, _LAYERS - 1])
        (got,) = batched.evaluate_placements([placement])
        _assert_stats_identical(got, _oracle(use_batched_stats=False).evaluate_placement(placement))

    def test_duplicates_share_memoised_instance(self):
        batched = _oracle()
        placement = _placement([6, 9, 12])
        a, b = batched.evaluate_placements([placement, placement])
        assert a is b
        # A later per-placement call returns the same instance too.
        assert batched.evaluate_placement(placement) is a

    def test_overlapping_prefixes_share_trie_levels(self):
        """Placements sharing early exits resolve through shared prefix
        nodes — fewer nodes than (placement, exit) pairs — with no effect
        on the counts."""
        batched = _oracle()
        reference = _oracle(use_batched_stats=False)
        base = [6, 8, 10]
        family = [_placement(base[:k] + [tail]) for k in (1, 2, 3) for tail in (13, 15, 17)]
        got = batched.evaluate_placements(family)
        for g, placement in zip(got, family):
            _assert_stats_identical(g, reference.evaluate_placement(placement))
        stats = batched.memo_stats()
        total_exits = sum(p.num_exits for p in family)
        assert stats["prefix"]["size"] < total_exits

    def test_cross_batch_prefix_reuse(self):
        """A second batch extending the first's placements hits the prefix
        cache and still matches the reference."""
        batched = _oracle()
        reference = _oracle(use_batched_stats=False)
        first = [_placement([6, 9]), _placement([7, 11])]
        batched.evaluate_placements(first)
        hits_before = batched.memo_stats()["prefix"]["hits"]
        second = [_placement([6, 9, 14]), _placement([7, 11, 16])]
        got = batched.evaluate_placements(second)
        assert batched.memo_stats()["prefix"]["hits"] > hits_before
        for g, placement in zip(got, second):
            _assert_stats_identical(g, reference.evaluate_placement(placement))

    @settings(max_examples=15, deadline=None)
    @given(placements=_placements_strategy())
    def test_identical_under_lru_eviction(self, placements):
        """Tiny memo/prefix caps force constant eviction; results must not
        change (entries rebuild from the packed columns)."""
        tiny = _oracle(stats_memo_size=2, prefix_cache_size=2)
        reference = _oracle(use_batched_stats=False)
        got = tiny.evaluate_placements(placements)
        for g, placement in zip(got, placements):
            _assert_stats_identical(g, reference.evaluate_placement(placement))

    def test_eviction_counter_visible(self):
        tiny = _oracle(stats_memo_size=2, prefix_cache_size=2)
        placements = [
            _placement([p, p + 2]) for p in range(MIN_EXIT_POSITION, _LAYERS - 2)
        ]
        tiny.evaluate_placements(placements)
        stats = tiny.memo_stats()
        assert stats["stats"]["evictions"] > 0
        assert stats["stats"]["size"] <= 2 and stats["prefix"]["size"] <= 2

    def test_memo_stats_shape(self):
        oracle = _oracle()
        oracle.evaluate_placements([_placement([6, 9])])
        stats = oracle.memo_stats()
        for name in ("stats", "prefix", "counts", "packed"):
            for key in ("size", "maxsize", "hits", "misses", "evictions"):
                assert isinstance(stats[name][key], int)

    def test_layer_mismatch_rejected(self):
        oracle = _oracle()
        wrong = ExitPlacement(_LAYERS + 4, (6, 9))
        with pytest.raises(ValueError):
            oracle.evaluate_placements([wrong])


class TestPopulationStats:
    """Stacked rows mirror the per-placement evaluations exactly."""

    def test_rows_match_evaluations(self):
        oracle = _oracle()
        placements = [
            _placement([6]),
            _placement([6, 9, 12]),
            _placement([7, 8, 9, 10, 11]),
        ]
        stats = oracle.population_stats(placements)
        assert len(stats) == len(placements)
        for row, (placement, evaluation) in enumerate(
            zip(placements, stats.evaluations)
        ):
            w = placement.num_exits
            assert stats.widths[row] == w
            assert np.array_equal(stats.n_i[row, :w], evaluation.n_i)
            assert np.array_equal(stats.usage_head[row, :w], evaluation.usage[:-1])
            assert stats.usage_tail[row] == evaluation.usage[-1]
            assert np.array_equal(
                stats.dissimilarity[row, :w], evaluation.dissimilarity
            )
            assert stats.dynamic_accuracy[row] == evaluation.dynamic_accuracy
            # Padding stays zero beyond each row's width.
            assert not stats.n_i[row, w:].any()

    def test_empty_population(self):
        stats = _oracle().population_stats([])
        assert len(stats) == 0


class _EvalContext:
    """Fused vs reference evaluators sharing one oracle per platform."""

    def __init__(self, platform_key: str):
        platform = get_platform(platform_key)
        model = EnergyModel(platform)
        cost = estimate_cost(_CONFIG)
        self.dvfs = DvfsSpace(platform)
        oracle = _oracle()
        base = model.network_report(cost, self.dvfs.default_setting())
        kwargs = dict(
            config=_CONFIG,
            cost=cost,
            oracle=oracle,
            energy_model=model,
            baseline_energy_j=base.energy_j,
            baseline_latency_s=base.latency_s,
        )
        self.fused = DynamicEvaluator(**kwargs)
        self.reference = DynamicEvaluator(**kwargs, use_fused_objectives=False)


_EVAL_CONTEXTS: dict[str, _EvalContext] = {}


def _context(platform_key: str) -> _EvalContext:
    if platform_key not in _EVAL_CONTEXTS:
        _EVAL_CONTEXTS[platform_key] = _EvalContext(platform_key)
    return _EVAL_CONTEXTS[platform_key]


class TestFusedObjectives:
    """Fused objective vectors equal the scalar objectives() bitwise."""

    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_objectives_bitwise(self, platform_key, data):
        ctx = _context(platform_key)
        placements = data.draw(_placements_strategy())
        setting = ctx.dvfs.all_settings()[
            data.draw(st.integers(0, len(ctx.dvfs.all_settings()) - 1))
        ]
        fused_evals = ctx.fused.evaluate_population(placements, setting)
        ref_evals = ctx.reference.evaluate_population(placements, setting)
        for fe, re_ in zip(fused_evals, ref_evals):
            got = ctx.fused.objectives(fe)
            want = ctx.reference.objectives(re_)
            assert got == want

    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    def test_generation_matches_per_call(self, platform_key):
        """evaluate_generation == [evaluate(p, s) ...] across mixed
        settings, order-preserving."""
        ctx = _context(platform_key)
        settings_list = ctx.dvfs.all_settings()
        decoded = [
            (_placement([6, 9]), settings_list[0]),
            (_placement([7, 12, 15]), settings_list[-1]),
            (_placement([6, 9]), settings_list[-1]),
            (_placement([8]), settings_list[0]),
            (_placement([6, 9]), settings_list[0]),  # duplicate pair
        ]
        got = ctx.fused.evaluate_generation(decoded)
        assert len(got) == len(decoded)
        for evaluation, (placement, setting) in zip(got, decoded):
            want = ctx.reference.evaluate(placement, setting)
            assert evaluation.placement == placement
            assert evaluation.setting == setting
            assert np.array_equal(evaluation.scores, want.scores)
            assert evaluation.dynamic_energy_j == want.dynamic_energy_j
            assert evaluation.dynamic_latency_s == want.dynamic_latency_s
            assert evaluation.energy_gain == want.energy_gain
            assert evaluation.latency_gain == want.latency_gain
            assert evaluation.d_score == want.d_score

    def test_objectives_memo_populated(self):
        ctx = _context("tx2-gpu")
        setting = ctx.dvfs.default_setting()
        before = len(ctx.fused._objectives_cache)
        ctx.fused.evaluate_population([_placement([6, 10, 14])], setting)
        assert len(ctx.fused._objectives_cache) > before


class TestEngineEquivalence:
    """Whole-engine archives are unchanged by the batched/fused flags."""

    def _engines(self, static_evaluator, surrogate, **off_flags):
        from repro.search.ioe import InnerEngine
        from repro.search.nsga2 import Nsga2Config

        backbone = attentivenas_model("a0")
        fraction = surrogate.accuracy_fraction(backbone)
        nsga = Nsga2Config(population=8, generations=3)
        on = InnerEngine(
            backbone, static_evaluator, fraction, nsga=nsga, seed=11
        )
        off = InnerEngine(
            backbone, static_evaluator, fraction, nsga=nsga, seed=11, **off_flags
        )
        return on, off

    def test_ioe_archive_unchanged(self, static_evaluator, surrogate):
        on, off = self._engines(
            static_evaluator,
            surrogate,
            use_batched_oracle=False,
            use_fused_objectives=False,
        )
        result_on, result_off = on.run(), off.run()
        assert [i.key() for i in result_on.explored] == [
            i.key() for i in result_off.explored
        ]
        for a, b in zip(result_on.explored, result_off.explored):
            assert np.array_equal(a.objectives, b.objectives)
        assert sorted(i.key() for i in result_on.pareto) == sorted(
            i.key() for i in result_off.pareto
        )

    def test_random_search_archive_unchanged(self, static_evaluator, surrogate):
        from repro.search.random_search import RandomSearch

        on, off = self._engines(
            static_evaluator,
            surrogate,
            use_batched_oracle=False,
            use_fused_objectives=False,
        )
        search_on = RandomSearch(on.problem, budget=20, rng=5)
        search_off = RandomSearch(off.problem, budget=20, rng=5)
        history_on, history_off = search_on.run(), search_off.run()
        assert [i.key() for i in history_on] == [i.key() for i in history_off]
        for a, b in zip(history_on, history_off):
            assert np.array_equal(a.objectives, b.objectives)
        assert sorted(i.key() for i in search_on.pareto()) == sorted(
            i.key() for i in search_off.pareto()
        )
