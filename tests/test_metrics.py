"""Multi-objective metrics: dominance, Pareto sort, hypervolume, RoD."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.dominance_ratio import dominance_report, ratio_of_dominance
from repro.metrics.hypervolume import hypervolume
from repro.metrics.pareto import (
    crowding_distance,
    dominates,
    non_dominated_mask,
    non_dominated_mask_reference,
    non_dominated_sort,
    non_dominated_sort_reference,
    pareto_front,
)

point_arrays = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 30), st.integers(2, 3)),
    elements=st.floats(-5, 5, allow_nan=False),
)


class TestDominates:
    def test_strict(self):
        assert dominates(np.asarray([1, 2]), np.asarray([0, 2]))
        assert not dominates(np.asarray([1, 2]), np.asarray([1, 2]))
        assert not dominates(np.asarray([1, 0]), np.asarray([0, 1]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates(np.zeros(2), np.zeros(3))

    @settings(max_examples=50, deadline=None)
    @given(point_arrays)
    def test_antisymmetric(self, points):
        a, b = points[0], points[-1]
        assert not (dominates(a, b) and dominates(b, a))


class TestNonDominated:
    def test_known_front(self):
        pts = np.asarray([[1, 3], [2, 2], [3, 1], [1, 1], [0, 0]])
        mask = non_dominated_mask(pts)
        np.testing.assert_array_equal(mask, [True, True, True, False, False])

    def test_duplicates_all_kept(self):
        pts = np.asarray([[1, 1], [1, 1], [0, 0]])
        mask = non_dominated_mask(pts)
        assert mask[0] and mask[1] and not mask[2]

    @settings(max_examples=50, deadline=None)
    @given(point_arrays)
    def test_front_is_mutually_nondominated(self, points):
        front = pareto_front(points)
        for i in range(len(front)):
            for j in range(len(front)):
                if i != j:
                    assert not dominates(front[i], front[j])

    @settings(max_examples=50, deadline=None)
    @given(point_arrays)
    def test_every_point_dominated_by_or_on_front(self, points):
        front = pareto_front(points)
        for p in points:
            on_front = any(np.array_equal(p, f) for f in front)
            dominated = any(dominates(f, p) for f in front)
            assert on_front or dominated


class TestNonDominatedSort:
    def test_fronts_partition(self):
        rng = np.random.default_rng(0)
        pts = rng.random((40, 3))
        fronts = non_dominated_sort(pts)
        flat = np.concatenate(fronts)
        assert sorted(flat.tolist()) == list(range(40))

    def test_front_ordering(self):
        pts = np.asarray([[2, 2], [1, 1], [0, 0]])
        fronts = non_dominated_sort(pts)
        assert [f.tolist() for f in fronts] == [[0], [1], [2]]

    def test_first_front_matches_mask(self):
        rng = np.random.default_rng(1)
        pts = rng.random((30, 2))
        fronts = non_dominated_sort(pts)
        mask = non_dominated_mask(pts)
        assert sorted(fronts[0].tolist()) == sorted(np.flatnonzero(mask).tolist())


class TestVectorizedMatchesReference:
    """The matrix-peel sort/mask equal the double-loop reference exactly.

    Dominance is a pure comparison, so the vectorized partitions must match
    index for index and order for order — the NSGA-II trajectory depends on
    the in-front index order, not just the partition sets.
    """

    @settings(max_examples=60, deadline=None)
    @given(point_arrays)
    def test_sort_identical(self, points):
        got = non_dominated_sort(points)
        want = non_dominated_sort_reference(points)
        assert len(got) == len(want)
        for g, w in zip(got, want):
            assert g.tolist() == list(w)

    @settings(max_examples=60, deadline=None)
    @given(point_arrays)
    def test_mask_identical(self, points):
        np.testing.assert_array_equal(
            non_dominated_mask(points), non_dominated_mask_reference(points)
        )

    def test_duplicate_rows_share_front(self):
        pts = np.asarray([[1.0, 1.0], [1.0, 1.0], [0.0, 2.0], [0.0, 0.0]])
        got = non_dominated_sort(pts)
        want = non_dominated_sort_reference(pts)
        assert [g.tolist() for g in got] == [list(w) for w in want]

    def test_all_equal_rows_single_front(self):
        pts = np.ones((7, 3))
        fronts = non_dominated_sort(pts)
        assert len(fronts) == 1 and fronts[0].tolist() == list(range(7))

    def test_empty(self):
        assert non_dominated_mask(np.zeros((0, 3))).shape == (0,)
        assert non_dominated_sort(np.zeros((0, 3))) == []


class TestCrowding:
    def test_extremes_infinite(self):
        pts = np.asarray([[0, 3], [1, 2], [2, 1], [3, 0]])
        crowd = crowding_distance(pts)
        assert np.isinf(crowd[0]) and np.isinf(crowd[-1])
        assert np.isfinite(crowd[1]) and np.isfinite(crowd[2])

    def test_small_sets_infinite(self):
        assert np.isinf(crowding_distance(np.asarray([[1, 2]]))).all()
        assert np.isinf(crowding_distance(np.asarray([[1, 2], [2, 1]]))).all()

    def test_denser_is_smaller(self):
        pts = np.asarray([[0.0, 4.0], [1.0, 3.0], [1.1, 2.9], [2.0, 2.0], [4.0, 0.0]])
        crowd = crowding_distance(pts)
        assert crowd[2] < crowd[3]

    def test_constant_objective_ignored(self):
        pts = np.asarray([[1.0, 5.0], [2.0, 5.0], [3.0, 5.0]])
        crowd = crowding_distance(pts)
        assert np.isfinite(crowd[1])


class TestHypervolume:
    def test_single_point_rectangle(self):
        assert hypervolume(np.asarray([[2.0, 3.0]]), np.zeros(2)) == pytest.approx(6.0)

    def test_two_point_staircase(self):
        pts = np.asarray([[2.0, 1.0], [1.0, 2.0]])
        assert hypervolume(pts, np.zeros(2)) == pytest.approx(3.0)

    def test_dominated_point_adds_nothing(self):
        base = hypervolume(np.asarray([[2.0, 2.0]]), np.zeros(2))
        extra = hypervolume(np.asarray([[2.0, 2.0], [1.0, 1.0]]), np.zeros(2))
        assert extra == pytest.approx(base)

    def test_below_reference_ignored(self):
        assert hypervolume(np.asarray([[-1.0, 5.0]]), np.zeros(2)) == 0.0

    def test_3d_box(self):
        assert hypervolume(np.asarray([[1.0, 2.0, 3.0]]), np.zeros(3)) == pytest.approx(6.0)

    def test_3d_two_boxes(self):
        pts = np.asarray([[2.0, 1.0, 1.0], [1.0, 2.0, 1.0]])
        # union volume = 2 + 2 - 1 (overlap) = 3
        assert hypervolume(pts, np.zeros(3)) == pytest.approx(3.0)

    def test_3d_matches_monte_carlo(self):
        rng = np.random.default_rng(2)
        pts = rng.random((12, 3))
        exact = hypervolume(pts, np.zeros(3))
        samples = rng.random((200_000, 3))
        covered = np.zeros(len(samples), dtype=bool)
        for p in pts:
            covered |= np.all(samples < p, axis=1)
        assert exact == pytest.approx(covered.mean(), abs=0.01)

    def test_1d(self):
        assert hypervolume(np.asarray([[3.0], [5.0]]), np.asarray([1.0])) == pytest.approx(4.0)

    def test_reference_mismatch(self):
        with pytest.raises(ValueError):
            hypervolume(np.zeros((2, 2)), np.zeros(3))

    def test_4d_not_implemented(self):
        with pytest.raises(NotImplementedError):
            hypervolume(np.zeros((2, 4)), np.zeros(4))

    @settings(max_examples=30, deadline=None)
    @given(point_arrays)
    def test_monotone_under_point_addition(self, points):
        reference = points.min(axis=0) - 1.0
        base = hypervolume(points[:-1], reference) if len(points) > 1 else 0.0
        assert hypervolume(points, reference) >= base - 1e-9


class TestRatioOfDominance:
    def test_total_dominance(self):
        ours = np.asarray([[2.0, 2.0], [3.0, 3.0]])
        theirs = np.asarray([[1.0, 1.0]])
        assert ratio_of_dominance(ours, theirs) == 1.0
        assert ratio_of_dominance(theirs, ours) == 0.0

    def test_partial(self):
        ours = np.asarray([[2.0, 2.0], [0.0, 0.0]])
        theirs = np.asarray([[1.0, 1.0]])
        assert ratio_of_dominance(ours, theirs) == 0.5

    def test_empty_ours(self):
        assert ratio_of_dominance(np.zeros((0, 2)), np.ones((3, 2))) == 0.0

    def test_report_advantage(self):
        report = dominance_report(np.asarray([[2.0, 2.0]]), np.asarray([[1.0, 1.0]]))
        assert report.advantage == pytest.approx(1.0)

    def test_incomparable_sets(self):
        ours = np.asarray([[1.0, 0.0]])
        theirs = np.asarray([[0.0, 1.0]])
        report = dominance_report(ours, theirs)
        assert report.rod_a_over_b == 0.0 and report.rod_b_over_a == 0.0
