"""DataLoader and the synthetic dataset substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import DifficultyDistribution, SyntheticVisionDataset, train_val_test_split
from repro.nn.dataloader import DataLoader


class TestDataLoader:
    def _data(self, n=10):
        return np.arange(n * 2).reshape(n, 2).astype(float), np.arange(n)

    def test_covers_all_samples(self):
        x, y = self._data(10)
        loader = DataLoader(x, y, batch_size=3, shuffle=True, rng=0)
        seen = np.concatenate([labels for _, labels in loader])
        assert sorted(seen.tolist()) == list(range(10))

    def test_drop_last(self):
        x, y = self._data(10)
        loader = DataLoader(x, y, batch_size=3, drop_last=True, rng=0)
        batches = list(loader)
        assert len(batches) == 3 == len(loader)
        assert all(len(b[1]) == 3 for b in batches)

    def test_len_without_drop(self):
        x, y = self._data(10)
        assert len(DataLoader(x, y, batch_size=3)) == 4

    def test_images_match_labels(self):
        x, y = self._data(8)
        loader = DataLoader(x, y, batch_size=4, shuffle=True, rng=1)
        for bx, by in loader:
            np.testing.assert_array_equal(bx[:, 0] // 2, by)

    def test_epochs_reshuffle(self):
        x, y = self._data(16)
        loader = DataLoader(x, y, batch_size=16, shuffle=True, rng=2)
        first = next(iter(loader))[1].copy()
        second = next(iter(loader))[1].copy()
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self):
        x, y = self._data(6)
        loader = DataLoader(x, y, batch_size=2, shuffle=False)
        order = np.concatenate([labels for _, labels in loader])
        np.testing.assert_array_equal(order, y)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 1)), np.zeros(2))

    def test_bad_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(np.zeros((3, 1)), np.zeros(3), batch_size=0)


class TestDifficultyDistribution:
    def test_samples_in_unit_interval(self):
        d = DifficultyDistribution()
        samples = d.sample(500, np.random.default_rng(0))
        assert samples.min() >= 0 and samples.max() <= 1

    def test_cdf_quantile_inverse(self):
        d = DifficultyDistribution(2.0, 3.0)
        for q in (0.1, 0.5, 0.9):
            assert d.cdf(d.quantile(q)) == pytest.approx(q)

    def test_mean_formula(self):
        d = DifficultyDistribution(2.0, 6.0)
        assert d.mean == pytest.approx(0.25)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DifficultyDistribution(alpha=0)

    @given(st.floats(0.01, 0.99))
    def test_cdf_monotone(self, t):
        d = DifficultyDistribution()
        assert d.cdf(t) <= d.cdf(min(t + 0.01, 1.0)) + 1e-12


class TestSyntheticVisionDataset:
    def test_shapes(self):
        ds = SyntheticVisionDataset(num_classes=5, image_size=12, channels=2, seed=0)
        images, labels, diff = ds.generate(20)
        assert images.shape == (20, 2, 12, 12)
        assert labels.shape == (20,) and labels.max() < 5
        assert diff.shape == (20,)

    def test_deterministic_per_split(self):
        ds = SyntheticVisionDataset(seed=1)
        a = ds.generate(10, split="train")
        b = ds.generate(10, split="train")
        np.testing.assert_array_equal(a[0], b[0])

    def test_splits_disjoint_streams(self):
        ds = SyntheticVisionDataset(seed=1)
        train = ds.generate(10, split="train")[0]
        val = ds.generate(10, split="val")[0]
        assert not np.allclose(train, val)

    def test_difficulty_scales_noise(self):
        ds = SyntheticVisionDataset(num_classes=4, seed=2)
        images, labels, diff = ds.generate(400)
        residual = images - ds.prototypes[labels]
        # Per-sample residual RMS should correlate with difficulty (the
        # random translations add a difficulty-independent component, so the
        # correlation is strong but not perfect).
        rms = np.sqrt((residual**2).mean(axis=(1, 2, 3)))
        corr = np.corrcoef(rms, diff)[0, 1]
        assert corr > 0.6

    def test_easy_samples_classifiable(self):
        # Small images + heavy noise so hard samples defeat the matched
        # filter; the property under test is the difficulty *ordering*.
        ds = SyntheticVisionDataset(num_classes=4, image_size=8, noise_scale=10.0, seed=3)
        images, labels, diff = ds.generate(400)
        easy = diff < 0.3
        acc_easy = ds.bayes_reference_accuracy(images[easy], labels[easy])
        acc_hard = ds.bayes_reference_accuracy(images[~easy], labels[~easy])
        assert acc_easy > acc_hard + 0.05
        assert acc_easy > 0.5

    def test_prototypes_distinct(self):
        ds = SyntheticVisionDataset(num_classes=6, seed=4)
        protos = ds.prototypes.reshape(6, -1)
        gram = protos @ protos.T
        norm = np.sqrt(np.outer(np.diag(gram), np.diag(gram)))
        cosine = gram / norm
        off_diag = cosine[~np.eye(6, dtype=bool)]
        assert np.abs(off_diag).max() < 0.9


class TestSplits:
    def test_partition_sizes(self):
        x = np.arange(100).reshape(100, 1)
        y = np.arange(100)
        parts = train_val_test_split(x, y, val_fraction=0.2, test_fraction=0.1, rng=0)
        assert len(parts["val"][0]) == 20
        assert len(parts["test"][0]) == 10
        assert len(parts["train"][0]) == 70

    def test_no_overlap_and_complete(self):
        x = np.arange(50).reshape(50, 1)
        y = np.arange(50)
        parts = train_val_test_split(x, y, rng=1)
        all_labels = np.concatenate([parts[k][1] for k in ("train", "val", "test")])
        assert sorted(all_labels.tolist()) == list(range(50))

    def test_invalid_fractions(self):
        with pytest.raises(ValueError):
            train_val_test_split(np.zeros((4, 1)), np.zeros(4), 0.6, 0.6)
