"""The vectorized dynamic-evaluation kernel: cost tables and bit-identity.

The cost-table kernel's contract is absolute: every number it produces —
batch timings, prefix reports, exit-path costs, full dynamic evaluations —
must equal the pre-refactor per-layer reference loop *bit for bit* (same
float64 additions in the same order), so cache keys, golden artifacts and
search trajectories are all unchanged.  These tests pin that contract on
two registry platforms, plus the caching/sharing behaviour that makes the
kernel O(exits) on the hot path.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy.exit_model import BackboneExitOracle, ExitCapabilityModel
from repro.arch.cost import estimate_cost, exit_branch_cost
from repro.baselines.attentivenas import attentivenas_model
from repro.eval.dynamic import DynamicEvaluator
from repro.exits.evaluation import ExitEvaluation, ideal_mapping_stats
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.cost_table import CostTableBank, SettingCostTable
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel, interleaved_cumsum
from repro.hardware.platform import get_platform

PLATFORM_KEYS = ("tx2-gpu", "carmel-cpu")

_CONTEXTS: dict[str, dict] = {}


def _context(platform_key: str) -> dict:
    """Session-lazy heavy objects per platform (shared oracle for the
    vectorized/reference evaluator pair, so only the kernel differs)."""
    if platform_key not in _CONTEXTS:
        platform = get_platform(platform_key)
        model = EnergyModel(platform)
        config = attentivenas_model("a3")
        cost = estimate_cost(config)
        dvfs = DvfsSpace(platform)
        oracle = BackboneExitOracle(
            config.key, config.total_mbconv_layers, 0.87, seed=0, n_samples=512
        )
        base = model.network_report(cost, dvfs.default_setting())
        kwargs = dict(
            config=config,
            cost=cost,
            oracle=oracle,
            energy_model=model,
            baseline_energy_j=base.energy_j,
            baseline_latency_s=base.latency_s,
        )
        _CONTEXTS[platform_key] = {
            "platform": platform,
            "model": model,
            "config": config,
            "cost": cost,
            "dvfs": dvfs,
            "vectorized": DynamicEvaluator(**kwargs),
            "reference": DynamicEvaluator(**kwargs, use_tables=False),
        }
    return _CONTEXTS[platform_key]


def _report_fields(report) -> tuple:
    return (
        report.latency_s,
        report.energy_j,
        report.core_energy_j,
        report.mem_energy_j,
        report.static_energy_j,
    )


class TestBatchTiming:
    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    def test_matches_layer_timing_bitwise(self, platform_key):
        ctx = _context(platform_key)
        rng = np.random.default_rng(1)
        for _ in range(5):
            setting = ctx["dvfs"].sample(rng)
            batch = ctx["model"].latency.batch_timing(ctx["cost"].layers, setting)
            for i, layer in enumerate(ctx["cost"].layers):
                single = ctx["model"].latency.layer_timing(layer, setting)
                assert batch.total_s[i] == single.total_s
                assert batch.compute_s[i] == single.compute_s
                assert batch.memory_s[i] == single.memory_s
                assert batch.overhead_s[i] == single.overhead_s
                assert batch.core_activity[i] == single.core_activity
                assert batch.mem_activity[i] == single.mem_activity

    def test_interleaved_cumsum_preserves_order(self):
        rng = np.random.default_rng(2)
        first, second = rng.normal(size=40), rng.normal(size=40)
        running, expected = 0.0, []
        for a, b in zip(first, second):
            running += a
            running += b
            expected.append(running)
        assert np.array_equal(
            interleaved_cumsum(first, second), np.asarray(expected)
        )


class TestSettingCostTable:
    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    def test_prefix_report_equivalence(self, platform_key):
        """Cumsum lookups == reference loop over every prefix, with and
        without an exit branch."""
        ctx = _context(platform_key)
        cost, model, config = ctx["cost"], ctx["model"], ctx["config"]
        rng = np.random.default_rng(3)
        channels = {
            spec.index: (spec.out_channels, spec.out_resolution)
            for spec in config.layers()
            if spec.kind == "mbconv"
        }
        for _ in range(3):
            setting = ctx["dvfs"].sample(rng)
            table = SettingCostTable(model, cost, setting)
            for position in range(1, config.total_mbconv_layers + 1):
                reference = model.composite_report_reference(
                    cost.prefix(position), setting
                )
                assert _report_fields(table.prefix_report(position)) == _report_fields(
                    reference
                )
                width, resolution = channels[position]
                branch = exit_branch_cost(width, resolution, config.num_classes)
                with_branch = model.composite_report_reference(
                    list(cost.prefix(position)) + [branch], setting
                )
                assert _report_fields(
                    table.prefix_report(position, exit_layer=branch)
                ) == _report_fields(with_branch)

    @pytest.mark.parametrize("platform_key", PLATFORM_KEYS)
    def test_network_report_equivalence(self, platform_key):
        ctx = _context(platform_key)
        setting = ctx["dvfs"].default_setting()
        table = SettingCostTable(ctx["model"], ctx["cost"], setting)
        assert _report_fields(table.network_report()) == _report_fields(
            ctx["model"].composite_report_reference(ctx["cost"].layers, setting)
        )

    def test_branch_terms_cached_per_position(self):
        ctx = _context("tx2-gpu")
        table = ctx["vectorized"].bank.table(ctx["dvfs"].default_setting())
        branch = ctx["vectorized"].branch_cost(6)
        assert table.branch_terms(6, branch) is table.branch_terms(6, branch)

    def test_bank_shares_tables_across_placements(self):
        ctx = _context("tx2-gpu")
        bank = CostTableBank(ctx["model"], ctx["cost"])
        a = ctx["dvfs"].decode(0, 0)
        b = ctx["dvfs"].decode(1, 0)
        assert bank.table(a) is bank.table(a)
        bank.table(b)
        assert len(bank) == 2

    def test_vectorized_accumulate_matches_reference(self):
        """EnergyModel.composite_report (now vectorized) == reference loop
        over arbitrary layer sequences, including repeats and branches."""
        ctx = _context("tx2-gpu")
        layers = list(ctx["cost"].layers) + [exit_branch_cost(64, 14, 100)]
        rng = np.random.default_rng(4)
        for _ in range(10):
            size = int(rng.integers(1, len(layers) + 1))
            subset = [layers[i] for i in rng.choice(len(layers), size=size)]
            setting = ctx["dvfs"].sample(rng)
            assert _report_fields(
                ctx["model"].composite_report(subset, setting)
            ) == _report_fields(
                ctx["model"].composite_report_reference(subset, setting)
            )


def _evaluation_pair(platform_key, positions, core_idx, emc_idx):
    ctx = _context(platform_key)
    total = ctx["config"].total_mbconv_layers
    placement = ExitPlacement(total, positions)
    dvfs = ctx["dvfs"]
    setting = dvfs.decode(core_idx % len(dvfs.core_freqs), emc_idx % len(dvfs.emc_freqs))
    return (
        ctx["vectorized"].evaluate(placement, setting),
        ctx["reference"].evaluate(placement, setting),
    )


@st.composite
def placements(draw):
    """(platform, positions, core gene, emc gene) over both platforms."""
    platform_key = draw(st.sampled_from(PLATFORM_KEYS))
    total = _context(platform_key)["config"].total_mbconv_layers
    positions = draw(
        st.sets(
            st.integers(MIN_EXIT_POSITION, total - 1), min_size=1, max_size=6
        )
    )
    core = draw(st.integers(0, 63))
    emc = draw(st.integers(0, 63))
    return platform_key, tuple(sorted(positions)), core, emc


class TestDynamicEvaluatorBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(placements())
    def test_vectorized_equals_reference(self, drawn):
        """The acceptance contract: the cost-table evaluator reproduces the
        pre-refactor reference implementation exactly — every scalar and
        array, bit for bit — over random placements and DVFS settings on
        two registry platforms."""
        platform_key, positions, core, emc = drawn
        vec, ref = _evaluation_pair(platform_key, positions, core, emc)
        assert np.array_equal(vec.exit_energy_j, ref.exit_energy_j)
        assert np.array_equal(vec.exit_latency_s, ref.exit_latency_s)
        assert vec.dynamic_energy_j == ref.dynamic_energy_j
        assert vec.dynamic_latency_s == ref.dynamic_latency_s
        assert vec.energy_gain == ref.energy_gain
        assert vec.latency_gain == ref.latency_gain
        assert np.array_equal(vec.scores, ref.scores)
        assert vec.d_score == ref.d_score

    def test_objectives_identical(self):
        ctx = _context("tx2-gpu")
        total = ctx["config"].total_mbconv_layers
        placement = ExitPlacement(total, (6, 9, total - 1))
        setting = ctx["dvfs"].default_setting()
        vec = ctx["vectorized"].evaluate(placement, setting)
        ref = ctx["reference"].evaluate(placement, setting)
        assert ctx["vectorized"].objectives(vec) == ctx["reference"].objectives(ref)

    def test_hot_path_is_table_driven(self):
        """Once a setting's table (and its branch scalars) exist, new
        placements at that setting do no per-layer work at all — neither the
        reference loop nor the batch kernel runs again."""
        ctx = _context("tx2-gpu")
        evaluator = ctx["vectorized"]
        total = ctx["config"].total_mbconv_layers
        setting = ctx["dvfs"].decode(2, 3)
        latency = evaluator.energy_model.latency
        # Warm the table and every branch position the new placements use.
        evaluator.evaluate(ExitPlacement(total, tuple(range(5, 12))), setting)
        before = (latency.layer_timing_calls, latency.batch_timing_calls)
        evaluator.evaluate(ExitPlacement(total, (7, 9, 11)), setting)
        evaluator.evaluate(ExitPlacement(total, (5, 8)), setting)
        assert (latency.layer_timing_calls, latency.batch_timing_calls) == before


class TestExitEvaluationVectorized:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(1, 40).flatmap(
            lambda n: st.lists(
                st.lists(st.booleans(), min_size=4, max_size=4),
                min_size=n,
                max_size=n,
            )
        )
    )
    def test_ideal_mapping_usage_matches_loop(self, rows):
        """First-true-column indexing == the masked per-exit loop."""
        correct = np.asarray(rows, dtype=bool)
        stats = ideal_mapping_stats(correct)
        n_samples, num_heads = correct.shape
        num_exits = num_heads - 1
        usage = np.zeros(num_exits + 1)
        remaining = np.ones(n_samples, dtype=bool)
        for i in range(num_exits):
            takes = remaining & correct[:, i]
            usage[i] = takes.mean()
            remaining &= ~takes
        usage[-1] = remaining.mean()
        assert np.array_equal(stats.usage, usage)
        assert float(stats.usage.sum()) == pytest.approx(1.0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=10))
    def test_dissimilarity_cummax_matches_loop(self, values):
        n_i = np.asarray(values)
        stats = ExitEvaluation(
            n_i=n_i, final_accuracy=0.9, dynamic_accuracy=0.9,
            usage=np.ones(len(n_i) + 1) / (len(n_i) + 1),
        )
        expected = np.ones(len(n_i))
        for i in range(1, len(n_i)):
            expected[i] = 1.0 - float(n_i[:i].max())
        assert np.array_equal(stats.dissimilarity, expected)

    def test_dissimilarity_computed_once(self):
        stats = ExitEvaluation(
            n_i=np.asarray([0.3, 0.5, 0.4]), final_accuracy=0.9,
            dynamic_accuracy=0.9, usage=np.asarray([0.3, 0.2, 0.1, 0.4]),
        )
        assert stats.dissimilarity is stats.dissimilarity  # cached instance


class TestNetworkCostPrefix:
    def test_prefix_matches_scan_reference(self):
        cost = _context("tx2-gpu")["cost"]
        total = _context("tx2-gpu")["config"].total_mbconv_layers
        for position in range(1, total + 1):
            reference = []
            for layer in cost.layers:
                if layer.kind in ("head", "classifier"):
                    break
                reference.append(layer)
                if layer.kind == "mbconv" and layer.index == position:
                    break
            assert cost.prefix(position) == reference
            assert cost.layers[cost.prefix_end(position)].index == position

    def test_prefix_zero_returns_stem_only(self):
        cost = _context("tx2-gpu")["cost"]
        stem = cost.prefix(0)
        assert stem and all(layer.kind == "stem" for layer in stem)

    def test_prefix_invalid_position_raises(self):
        cost = _context("tx2-gpu")["cost"]
        total = _context("tx2-gpu")["config"].total_mbconv_layers
        with pytest.raises(ValueError, match="no MBConv layer"):
            cost.prefix(total + 1)
        with pytest.raises(ValueError, match="no MBConv layer"):
            cost.prefix_end(-3)


class TestOracleBatching:
    def test_basis_centers_cached(self):
        model = ExitCapabilityModel()
        assert model._centers is model._centers
        assert np.array_equal(model._centers, np.linspace(0.0, 1.0, model.num_basis))

    def test_basis_matrix_rows_equal_basis(self):
        model = ExitCapabilityModel()
        us = np.asarray([0.2, 0.5, 0.95, 1.0])
        matrix = model.basis_matrix(us)
        for row, u in zip(matrix, us):
            assert np.array_equal(row, model.basis(float(u)))

    def test_columns_independent_of_access_order(self):
        """Columns are pure functions of the oracle: demanding them through
        a placement batch or one by one (in any order) yields identical
        booleans — the fixed position-complete perturbation matrix makes the
        BLAS call shape independent of the access pattern."""
        config = attentivenas_model("a0")
        total = config.total_mbconv_layers
        make = lambda: BackboneExitOracle(config.key, total, 0.9, seed=5, n_samples=256)
        batched = make()
        batched.evaluate_placement(ExitPlacement(total, (6, 9, total - 1)))
        individual = make()
        for position in (total - 1, 9, 6):  # reversed, one at a time
            individual.exit_column(position)
        for position in (6, 9, total - 1):
            assert np.array_equal(
                batched.exit_column(position), individual.exit_column(position)
            )
        assert np.array_equal(batched.final_column(), individual.final_column())

    def test_placement_stats_match_independent_column_construction(self):
        """evaluate_placement == stats from columns rebuilt independently
        with the documented selection rule (rank by perceived difficulty,
        classify exactly the capability fraction), sharing the oracle's
        perturbation matrix so the check exercises the selection and stats
        plumbing rather than BLAS summation order."""
        config = attentivenas_model("a0")
        total = config.total_mbconv_layers
        oracle = BackboneExitOracle(config.key, total, 0.9, seed=5, n_samples=256)
        placement = ExitPlacement(total, (6, 8, 11))
        stats = oracle.evaluate_placement(placement)
        columns = []
        for position in placement.positions:
            u = position / total
            cap = float(oracle.model.capability(0.9, u))
            score = oracle._difficulties - oracle._perturbations()[:, position - 1]
            n_correct = int(round(np.clip(cap, 0.0, 1.0) * oracle.n_samples))
            column = np.zeros(oracle.n_samples, dtype=bool)
            if n_correct > 0:
                easiest = np.argpartition(score, max(n_correct - 1, 0))[:n_correct]
                column[easiest] = True
            columns.append(column)
        for got, expected in zip(
            (oracle.exit_column(p) for p in placement.positions), columns
        ):
            assert np.array_equal(got, expected)
        assert np.array_equal(stats.n_i, [c.mean() for c in columns])
