"""Experiment drivers: every paper artifact regenerates and renders."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.experiments import fig1, fig5, fig6, fig7, table1, table2, table3
from repro.experiments.config import Profile
from repro.experiments.runner import (
    clear_memo,
    run_platform_experiment,
    run_platform_experiments,
)


@pytest.fixture(scope="module")
def micro_profile():
    """Tiny budget so the whole driver suite runs in seconds."""
    return Profile(
        name="micro",
        outer_population=8,
        outer_generations=3,
        inner_population=8,
        inner_generations=3,
        ioe_candidates=2,
        oracle_samples=512,
        seed=3,
    )


@pytest.fixture(scope="module", autouse=True)
def fresh_memo():
    clear_memo()
    yield
    clear_memo()


class TestRunner:
    def test_memoisation(self, micro_profile):
        first = run_platform_experiment("tx2-gpu", micro_profile)
        second = run_platform_experiment("tx2-gpu", micro_profile)
        assert first is second

    def test_baselines_evaluated(self, micro_profile):
        experiment = run_platform_experiment("tx2-gpu", micro_profile)
        assert set(experiment.baseline_static) == {f"a{i}" for i in range(7)}
        assert set(experiment.baseline_inner) == {f"a{i}" for i in range(7)}

    def test_dynamic_points_shapes(self, micro_profile):
        experiment = run_platform_experiment("tx2-gpu", micro_profile)
        ours = experiment.hadas_dynamic_points()
        theirs = experiment.baseline_dynamic_points()
        assert ours.shape[1] == 2 and theirs.shape[1] == 2

    def test_hypervolumes_positive(self, micro_profile):
        experiment = run_platform_experiment("tx2-gpu", micro_profile)
        hv_ours, hv_theirs = experiment.hypervolumes()
        assert hv_ours > 0 and hv_theirs > 0


class TestShardedSweeps:
    """Multi-platform sweeps: one codec-backed batch, bit-identical shards."""

    PLATFORMS = ("tx2-gpu", "agx-gpu")

    @pytest.fixture(scope="class")
    def nano_profile(self):
        return Profile(
            name="nano",
            outer_population=6,
            outer_generations=2,
            inner_population=6,
            inner_generations=2,
            ioe_candidates=2,
            oracle_samples=256,
            seed=5,
        )

    def test_fig5_two_platform_process_sweep_bit_identical(self, nano_profile):
        clear_memo()
        serial = fig5.run(nano_profile, platforms=self.PLATFORMS)
        serial_text = fig5.render(serial)
        clear_memo()
        sharded_profile = dataclasses.replace(
            nano_profile, workers=2, executor="process"
        )
        sharded = fig5.run(sharded_profile, platforms=self.PLATFORMS)
        assert fig5.render(sharded) == serial_text  # whole report, bytes equal
        for platform in self.PLATFORMS:
            ours, theirs = serial.panels[platform], sharded.panels[platform]
            for name, series in ours.static_series().items():
                np.testing.assert_array_equal(series, theirs.static_series()[name])
            for name, series in ours.dynamic_series().items():
                np.testing.assert_array_equal(series, theirs.dynamic_series()[name])
            archive_a = ours.experiment.hadas.dynn_pareto()
            archive_b = theirs.experiment.hadas.dynn_pareto()
            assert len(archive_a) == len(archive_b)
            for a, b in zip(archive_a, archive_b):
                np.testing.assert_array_equal(a.genome, b.genome)
                np.testing.assert_array_equal(a.objectives, b.objectives)

        # fig6 at the same profile reuses the memoised shards (no new runs)
        # and matches the serial computation exactly.
        serial_fig6 = fig6.run(nano_profile, platforms=self.PLATFORMS)
        sharded_fig6 = fig6.run(sharded_profile, platforms=self.PLATFORMS)
        assert fig6.render(sharded_fig6) == fig6.render(serial_fig6)
        clear_memo()

    def test_sharded_runner_memoises_per_platform(self, nano_profile):
        clear_memo()
        first = run_platform_experiments(self.PLATFORMS, nano_profile)
        again = run_platform_experiments(self.PLATFORMS, nano_profile)
        for platform in self.PLATFORMS:
            assert first[platform] is again[platform]
            assert run_platform_experiment(platform, nano_profile) is first[platform]
        clear_memo()

    def test_runner_error_path_tears_down_pools(self, nano_profile, monkeypatch):
        import repro.experiments.runner as runner_mod

        created = []

        class Boom(RuntimeError):
            pass

        class ExplodingSearch(runner_mod.HadasSearch):
            def run(self):
                created.append(self)
                # Force the lazy pool into existence, then die mid-sweep.
                self.service.executor.run([(int, ("1",)), (int, ("2",))])
                assert self.service.executor._pool is not None
                raise Boom("mid-search interrupt")

        monkeypatch.setattr(runner_mod, "HadasSearch", ExplodingSearch)
        profile = dataclasses.replace(nano_profile, workers=2, executor="thread")
        with pytest.raises(Boom):
            runner_mod.compute_platform_experiment("tx2-gpu", profile)
        assert created and created[0].service.executor._pool is None

    def test_table2_sharded_rows_identical(self):
        serial = table2.run()
        sharded = table2.run(workers=2, executor="process")
        assert sharded.dvfs_rows == serial.dvfs_rows
        assert sharded.backbone_rows == serial.backbone_rows


class TestTable1:
    def test_hadas_row_full(self):
        rows = table1.run()
        hadas = next(r for r in rows if r.name == "HADAS")
        assert hadas.early_exiting and hadas.nas and hadas.dvfs and hadas.compatibility

    def test_render(self):
        text = table1.render(table1.run())
        assert "BranchyNet" in text and "HADAS" in text


class TestTable2:
    def test_cardinality_bound(self):
        result = table2.run()
        assert result.backbone_cardinality > table2.PAPER_BACKBONE_CARDINALITY

    def test_row_counts(self):
        result = table2.run()
        assert len(result.backbone_rows) == 6
        assert len(result.exit_rows) == 2
        assert len(result.dvfs_rows) == 8  # 4 platforms x (core + EMC)

    def test_render_mentions_ranges(self):
        text = table2.render(table2.run())
        assert "[16, 1984]" in text
        assert "2.94" in text


class TestTable3:
    def test_rows_complete(self, micro_profile):
        result = table3.run(micro_profile)
        names = [row.name for row in result.rows]
        assert names[:2] == ["AttentiveNAS-a0", "AttentiveNAS-a6"]
        assert any(name.startswith("HADAS-b1") for name in names)

    def test_stage_ordering_invariants(self, micro_profile):
        result = table3.run(micro_profile)
        for row in result.rows:
            assert row.eex_energy_mj < row.baseline_energy_mj
            assert row.eex_dvfs_energy_mj <= row.eex_energy_mj + 1e-9
            assert row.eex_acc > row.baseline_acc - 0.5

    def test_b1_accuracy_matches_a6(self, micro_profile):
        result = table3.run(micro_profile)
        b1 = result.row("HADAS-b1")
        a6 = result.row("AttentiveNAS-a6")
        assert b1.eex_acc >= a6.eex_acc - 1.0

    def test_render_includes_paper_column(self, micro_profile):
        text = table3.render(table3.run(micro_profile))
        assert "paper EExDVFS" in text
        assert "116.14" in text  # paper a0 value shown alongside


class TestFig1:
    def test_stage_metrics(self, micro_profile):
        result = fig1.run(micro_profile)
        assert {s.name for s in result.stages} == {"a0", "a6", "HADAS"}
        hadas = result.model("HADAS")
        assert hadas.dyn_energy_mj < hadas.static_energy_mj
        assert hadas.dyn_hw_energy_mj <= hadas.dyn_energy_mj

    def test_gap_narrows_with_stages(self, micro_profile):
        result = fig1.run(micro_profile)
        hadas, a0 = result.model("HADAS"), result.model("a0")
        static_gap = hadas.static_energy_mj / a0.static_energy_mj
        final_gap = hadas.dyn_hw_energy_mj / a0.dyn_hw_energy_mj
        assert final_gap < static_gap

    def test_render(self, micro_profile):
        text = fig1.render(fig1.run(micro_profile))
        assert "paper: ~57%" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self, micro_profile):
        return fig5.run(micro_profile, platforms=("tx2-gpu",))

    def test_static_series(self, result):
        panel = result.panels["tx2-gpu"]
        series = panel.static_series()
        assert len(series["explored"]) >= 8
        assert len(series["baselines"]) == 7
        assert len(series["front"]) <= len(series["explored"])

    def test_baseline_domination_structure(self, result):
        panel = result.panels["tx2-gpu"]
        report = panel.baseline_domination()
        assert set(report) == {f"a{i}" for i in range(7)}
        assert all(
            "energy_reduction" in v and "accuracy_gain" in v for v in report.values()
        )

    def test_rod_in_unit_interval(self, result):
        rod = result.panels["tx2-gpu"].rod()
        assert 0.0 <= rod <= 1.0

    def test_render(self, result):
        text = fig5.render(result)
        assert "RoD" in text and "tx2-gpu" in text


class TestFig6:
    def test_rows(self, micro_profile):
        result = fig6.run(micro_profile, platforms=("tx2-gpu",))
        row = result.row("tx2-gpu")
        assert row.hv_hadas > 0
        assert -1.0 <= row.rod_advantage <= 1.0
        with pytest.raises(KeyError):
            result.row("missing")

    def test_render(self, micro_profile):
        text = fig6.render(fig6.run(micro_profile, platforms=("tx2-gpu",)))
        assert "HV" in text and "RoD" in text


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self, micro_profile):
        return fig7.run(micro_profile)

    def test_three_arms(self, result):
        assert result.without.gamma == 0.0
        assert result.with_low.gamma > 0
        assert result.with_high.gamma > result.with_low.gamma

    def test_points_shape(self, result):
        for arm in (result.without, result.with_low, result.with_high):
            points = arm.points()
            assert points.shape[1] == 2

    def test_rod_improvement_finite(self, result):
        for arm in (result.with_low, result.with_high):
            value = result.rod_improvement(arm)
            assert -1.0 <= value <= 1.0

    def test_extreme_gains_finite(self, result):
        acc_gain, energy_gain = result.extreme_gains(result.with_high)
        assert np.isfinite(acc_gain) and np.isfinite(energy_gain)

    def test_render(self, result):
        text = fig7.render(result)
        assert "gamma" in text and "paper RoD" in text
