"""Hardware models: platforms, DVFS grids, power, roofline latency, energy,
and the simulated HW-in-the-loop measurement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cost import LayerCost, estimate_cost
from repro.baselines.attentivenas import attentivenas_model
from repro.hardware.dvfs import DvfsSetting, DvfsSpace
from repro.hardware.energy import EnergyModel, PathProfile, batched_execution
from repro.hardware.latency import LatencyModel
from repro.hardware.measurement import HardwareInTheLoop
from repro.hardware.platform import (
    PAPER_PLATFORM_ORDER,
    PLATFORM_ALIASES,
    VoltageCurve,
    canonical_platform_key,
    get_platform,
    list_platforms,
    resolve_platform_keys,
)
from repro.hardware.power import PowerModel


def _layer(macs=1e7, traffic=1e6) -> LayerCost:
    return LayerCost("l", "mbconv", 1, macs, 1e4, traffic / 3, traffic / 3, traffic / 3)


class TestPlatformRegistry:
    def test_four_paper_platforms(self):
        platforms = list_platforms()
        assert [p.key for p in platforms] == list(PAPER_PLATFORM_ORDER)

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            get_platform("rtx-4090")

    def test_aliases_resolve_to_registry_keys(self):
        for alias, key in PLATFORM_ALIASES.items():
            assert canonical_platform_key(alias) == key
            assert key in PAPER_PLATFORM_ORDER
        assert canonical_platform_key("tx2-gpu") == "tx2-gpu"  # canonical passes through
        assert canonical_platform_key("rtx-4090") == "rtx-4090"  # unknown untouched

    def test_resolve_platform_keys_validates(self):
        assert resolve_platform_keys(["tx2", "xavier"]) == ["tx2-gpu", "agx-gpu"]
        with pytest.raises(ValueError, match="valid platforms"):
            resolve_platform_keys(["tx2", "gamecube"])

    # Table II DVFS grid counts and ranges, per platform.
    @pytest.mark.parametrize("key,n_core,lo,hi,n_emc,emc_lo,emc_hi", [
        ("agx-gpu", 14, 0.1, 1.4, 9, 0.2, 2.1),
        ("carmel-cpu", 29, 0.1, 2.3, 9, 0.2, 2.1),
        ("tx2-gpu", 13, 0.1, 1.4, 11, 0.2, 1.8),
        ("denver-cpu", 12, 0.3, 2.1, 11, 0.2, 1.8),
    ])
    def test_table2_dvfs_grids(self, key, n_core, lo, hi, n_emc, emc_lo, emc_hi):
        platform = get_platform(key)
        assert len(platform.core_freqs_ghz) == n_core
        assert platform.core_freqs_ghz[0] == pytest.approx(lo)
        assert platform.core_freqs_ghz[-1] == pytest.approx(hi)
        assert len(platform.emc_freqs_ghz) == n_emc
        assert platform.emc_freqs_ghz[0] == pytest.approx(emc_lo)
        assert platform.emc_freqs_ghz[-1] == pytest.approx(emc_hi)

    def test_utilization_increases_with_layer_size(self, tx2_gpu):
        assert tx2_gpu.utilization(1e8) > tx2_gpu.utilization(1e5)
        assert tx2_gpu.utilization(1e12) <= tx2_gpu.util_base

    def test_with_overrides(self, tx2_gpu):
        modified = tx2_gpu.with_overrides(util_base=0.5)
        assert modified.util_base == 0.5
        assert tx2_gpu.util_base != 0.5  # original untouched

    def test_voltage_curve_clamps(self):
        curve = VoltageCurve(0.1, 1.0, 0.6, 1.1)
        assert curve.voltage(0.05) == pytest.approx(0.6)
        assert curve.voltage(2.0) == pytest.approx(1.1)
        assert curve.voltage(0.55) == pytest.approx(0.85)


class TestDvfsSpace:
    def test_cardinality(self, tx2_dvfs):
        assert tx2_dvfs.cardinality == 13 * 11

    def test_encode_decode_roundtrip(self, tx2_dvfs):
        for core in (0, 5, 12):
            for emc in (0, 10):
                setting = tx2_dvfs.decode(core, emc)
                assert tx2_dvfs.encode(setting) == (core, emc)

    def test_default_is_max(self, tx2_dvfs, tx2_gpu):
        default = tx2_dvfs.default_setting()
        assert default.core_ghz == tx2_gpu.max_core_freq
        assert default.emc_ghz == tx2_gpu.max_emc_freq

    def test_all_settings_unique(self, tx2_dvfs):
        settings_list = tx2_dvfs.all_settings()
        assert len(set(settings_list)) == tx2_dvfs.cardinality

    def test_sample_on_grid(self, tx2_dvfs, rng):
        for _ in range(20):
            s = tx2_dvfs.sample(rng)
            assert s.core_ghz in tx2_dvfs.core_freqs
            assert s.emc_ghz in tx2_dvfs.emc_freqs


class TestPowerModel:
    def test_dynamic_power_scales_superlinearly_with_freq(self, tx2_gpu):
        power = PowerModel(tx2_gpu)
        lo = power.core_dynamic_power(DvfsSetting(0.7, 1.8))
        hi = power.core_dynamic_power(DvfsSetting(1.4, 1.8))
        assert hi > 2 * lo  # V^2 f: doubling f more than doubles power

    def test_activity_scales_linearly(self, tx2_gpu):
        power = PowerModel(tx2_gpu)
        setting = DvfsSetting(1.0, 1.0)
        full = power.core_dynamic_power(setting, 1.0)
        half = power.core_dynamic_power(setting, 0.5)
        assert half == pytest.approx(full / 2)

    def test_invalid_activity(self, tx2_gpu):
        with pytest.raises(ValueError):
            PowerModel(tx2_gpu).core_dynamic_power(DvfsSetting(1.0, 1.0), 1.5)

    def test_static_power_grows_with_voltage(self, tx2_gpu):
        power = PowerModel(tx2_gpu)
        assert power.static_power(DvfsSetting(1.4, 1.8)) > power.static_power(DvfsSetting(0.1, 1.8))

    def test_mem_background_scales_with_emc(self, tx2_gpu):
        power = PowerModel(tx2_gpu)
        assert power.mem_background_power(DvfsSetting(1.0, 1.8)) > power.mem_background_power(
            DvfsSetting(1.0, 0.2)
        )

    def test_breakdown_total(self, tx2_gpu):
        power = PowerModel(tx2_gpu)
        breakdown = power.breakdown(DvfsSetting(1.0, 1.0), 0.5, 0.25)
        assert breakdown.total_w == pytest.approx(
            breakdown.core_dynamic_w + breakdown.mem_dynamic_w
            + breakdown.mem_background_w + breakdown.static_w
        )


class TestLatencyModel:
    def test_compute_bound_layer(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        timing = model.layer_timing(_layer(macs=1e9, traffic=1e3), DvfsSetting(1.4, 1.8))
        assert timing.bound == "compute"
        assert timing.compute_s > timing.memory_s

    def test_memory_bound_layer(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        timing = model.layer_timing(_layer(macs=1e3, traffic=1e9), DvfsSetting(1.4, 1.8))
        assert timing.bound == "memory"

    def test_latency_decreases_with_core_freq_when_compute_bound(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        layer = _layer(macs=1e9, traffic=1e3)
        slow = model.layer_timing(layer, DvfsSetting(0.5, 1.8)).total_s
        fast = model.layer_timing(layer, DvfsSetting(1.4, 1.8)).total_s
        assert fast < slow

    def test_latency_decreases_with_emc_when_memory_bound(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        layer = _layer(macs=1e3, traffic=1e9)
        slow = model.layer_timing(layer, DvfsSetting(1.4, 0.2)).total_s
        fast = model.layer_timing(layer, DvfsSetting(1.4, 1.8)).total_s
        assert fast < slow

    def test_overhead_stretches_at_low_clocks(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        assert model.dispatch_overhead_s(DvfsSetting(0.1, 0.2)) > model.dispatch_overhead_s(
            DvfsSetting(1.4, 1.8)
        )

    def test_overhead_at_max_clocks_is_base(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        at_max = model.dispatch_overhead_s(DvfsSetting(1.4, 1.8))
        assert at_max == pytest.approx(tx2_gpu.dispatch_overhead_s)

    def test_network_latency_is_sum(self, tx2_gpu, static_evaluator):
        model = LatencyModel(tx2_gpu)
        cost = estimate_cost(attentivenas_model("a0"))
        setting = DvfsSetting(1.4, 1.8)
        total = model.network_latency_s(cost, setting)
        assert total == pytest.approx(sum(t.total_s for t in model.timings(cost, setting)))

    def test_prefix_latency_less_than_full(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        config = attentivenas_model("a0")
        cost = estimate_cost(config)
        setting = DvfsSetting(1.4, 1.8)
        prefix = model.prefix_latency_s(cost, 5, setting)
        assert prefix < model.network_latency_s(cost, setting)

    def test_activity_fractions_bounded(self, tx2_gpu):
        model = LatencyModel(tx2_gpu)
        for macs, traffic in [(1e9, 1e3), (1e3, 1e9), (1e6, 1e6)]:
            timing = model.layer_timing(_layer(macs, traffic), DvfsSetting(1.0, 1.0))
            assert 0.0 <= timing.core_activity <= 1.0
            assert 0.0 <= timing.mem_activity <= 1.0


class TestEnergyModel:
    def test_energy_convex_in_core_freq(self, tx2_gpu):
        """Energy vs core frequency has an interior minimum (run-to-idle vs
        V^2 f trade-off)."""
        model = EnergyModel(tx2_gpu)
        cost = estimate_cost(attentivenas_model("a0"))
        energies = [
            model.network_energy_j(cost, DvfsSetting(f, 1.8))
            for f in tx2_gpu.core_freqs_ghz
        ]
        best = int(np.argmin(energies))
        assert 0 < best < len(energies) - 1

    def test_breakdown_sums_to_total(self, tx2_gpu):
        model = EnergyModel(tx2_gpu)
        cost = estimate_cost(attentivenas_model("a0"))
        report = model.network_report(cost, DvfsSetting(1.0, 1.0))
        assert report.energy_j == pytest.approx(
            report.core_energy_j + report.mem_energy_j + report.static_energy_j
        )

    def test_bigger_network_more_energy(self, tx2_gpu):
        model = EnergyModel(tx2_gpu)
        setting = DvfsSetting(1.4, 1.8)
        small = model.network_energy_j(estimate_cost(attentivenas_model("a0")), setting)
        large = model.network_energy_j(estimate_cost(attentivenas_model("a6")), setting)
        assert large > 1.5 * small

    def test_table3_energy_scale(self, tx2_gpu, tx2_dvfs):
        """Calibration anchor: a0/a6 land at the paper's energy scale."""
        model = EnergyModel(tx2_gpu)
        default = tx2_dvfs.default_setting()
        a0 = model.network_energy_j(estimate_cost(attentivenas_model("a0")), default) * 1e3
        a6 = model.network_energy_j(estimate_cost(attentivenas_model("a6")), default) * 1e3
        assert 120 < a0 < 220  # paper: 173.78
        assert 260 < a6 < 420  # paper: 335.48
        assert 1.5 < a6 / a0 < 2.7  # paper ratio: 1.93

    def test_composite_report_additive_layers(self, tx2_gpu):
        model = EnergyModel(tx2_gpu)
        setting = DvfsSetting(1.0, 1.0)
        layer = _layer()
        one = model.composite_report([layer], setting)
        two = model.composite_report([layer, layer], setting)
        assert two.energy_j == pytest.approx(2 * one.energy_j)
        assert two.latency_s == pytest.approx(2 * one.latency_s)

    def test_average_power_reasonable(self, tx2_gpu, tx2_dvfs):
        model = EnergyModel(tx2_gpu)
        report = model.network_report(
            estimate_cost(attentivenas_model("a3")), tx2_dvfs.default_setting()
        )
        assert 2.0 < report.average_power_w < 20.0  # Jetson TX2 envelope

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 12), st.integers(0, 10))
    def test_energy_positive_on_grid(self, core_idx, emc_idx):
        platform = get_platform("tx2-gpu")
        model = EnergyModel(platform)
        setting = DvfsSpace(platform).decode(core_idx, emc_idx)
        energy = model.network_energy_j(estimate_cost(attentivenas_model("a0")), setting)
        assert energy > 0


class TestMeasurement:
    def _cost(self):
        return estimate_cost(attentivenas_model("a0"))

    def test_caching(self, tx2_gpu, tx2_dvfs):
        hwil = HardwareInTheLoop(tx2_gpu, seed=0)
        setting = tx2_dvfs.default_setting()
        first = hwil.measure(self._cost(), setting)
        second = hwil.measure(self._cost(), setting)
        assert first is second
        assert hwil.cache_hits == 1
        assert hwil.cache_size == 1

    def test_deterministic_across_instances(self, tx2_gpu, tx2_dvfs):
        setting = tx2_dvfs.default_setting()
        a = HardwareInTheLoop(tx2_gpu, seed=3).measure(self._cost(), setting)
        b = HardwareInTheLoop(tx2_gpu, seed=3).measure(self._cost(), setting)
        assert a.energy_j_mean == b.energy_j_mean

    def test_noise_centres_on_model(self, tx2_gpu, tx2_dvfs):
        setting = tx2_dvfs.default_setting()
        hwil = HardwareInTheLoop(tx2_gpu, noise_cv=0.02, repeats=200, seed=1)
        truth = EnergyModel(tx2_gpu).network_energy_j(self._cost(), setting)
        measured = hwil.measure(self._cost(), setting)
        assert measured.energy_j_mean == pytest.approx(truth, rel=0.02)
        assert measured.energy_j_std / measured.energy_j_mean == pytest.approx(0.02, rel=0.5)

    def test_zero_noise_exact(self, tx2_gpu, tx2_dvfs):
        setting = tx2_dvfs.default_setting()
        hwil = HardwareInTheLoop(tx2_gpu, noise_cv=0.0, seed=0)
        truth = EnergyModel(tx2_gpu).network_report(self._cost(), setting)
        measured = hwil.measure(self._cost(), setting)
        assert measured.energy_j_mean == pytest.approx(truth.energy_j)
        assert measured.latency_s_std == 0.0

    def test_different_settings_cached_separately(self, tx2_gpu, tx2_dvfs):
        hwil = HardwareInTheLoop(tx2_gpu, seed=0)
        hwil.measure(self._cost(), tx2_dvfs.decode(0, 0))
        hwil.measure(self._cost(), tx2_dvfs.decode(1, 0))
        assert hwil.cache_size == 2


class TestBatchedExecutionGoldenValues:
    """`batched_execution` pinned against hand-computed numbers.

    Fleet pricing is built on this function; these goldens freeze the
    busy-time-serialises / shared-dispatch-overhead semantics so a drift in
    either silently re-pricing every serving and fleet benchmark is caught
    here first.  All expected values are worked out by hand from

        latency = sum(busy_i) + max_overhead
        energy  = sum(dynamic_i + passive_i * busy_i)
                  + passive(argmax overhead) * max_overhead
    """

    # PathProfile(busy_s, overhead_s, dynamic_energy_j, passive_power_w)
    SHALLOW = PathProfile(0.005, 0.001, 0.01, 1.5)
    MIDDLE = PathProfile(0.010, 0.002, 0.05, 2.0)
    DEEP = PathProfile(0.020, 0.005, 0.08, 3.0)

    def test_single_path_golden(self):
        latency, energy = batched_execution([self.MIDDLE])
        assert latency == pytest.approx(0.012, rel=1e-12)  # 0.010 + 0.002
        # 0.05 + 2.0 * 0.010 + 2.0 * 0.002 = 0.074
        assert energy == pytest.approx(0.074, rel=1e-12)
        assert latency == pytest.approx(self.MIDDLE.latency_s, rel=1e-12)
        assert energy == pytest.approx(self.MIDDLE.energy_j, rel=1e-12)

    def test_mixed_batch_golden(self):
        latency, energy = batched_execution([self.SHALLOW, self.MIDDLE, self.DEEP])
        # busy serialises: 0.005 + 0.010 + 0.020; deepest overhead 0.005 shared.
        assert latency == pytest.approx(0.040, rel=1e-12)
        # (0.01 + 1.5*0.005) + (0.05 + 2.0*0.010) + (0.08 + 3.0*0.020)
        #   + 3.0*0.005 (deep path's passive burns the shared overhead)
        # = 0.0175 + 0.070 + 0.140 + 0.015 = 0.2425
        assert energy == pytest.approx(0.2425, rel=1e-12)

    def test_homogeneous_batch_golden(self):
        latency, energy = batched_execution([self.DEEP] * 4)
        assert latency == pytest.approx(4 * 0.020 + 0.005, rel=1e-12)  # 0.085
        # 4 * (0.08 + 3.0*0.020) + 3.0*0.005 = 4*0.14 + 0.015 = 0.575
        assert energy == pytest.approx(0.575, rel=1e-12)

    def test_batch_order_does_not_change_price(self):
        forward = batched_execution([self.SHALLOW, self.MIDDLE, self.DEEP])
        backward = batched_execution([self.DEEP, self.MIDDLE, self.SHALLOW])
        assert forward == pytest.approx(backward, rel=1e-12)

    def test_overhead_tie_charges_first_deepest(self):
        # Two paths tie on overhead but differ on passive power: the shared
        # overhead is charged at the *first* maximal path's passive power
        # (Python max semantics) — pinned so batch pricing stays stable.
        a = PathProfile(0.010, 0.004, 0.02, 1.0)
        b = PathProfile(0.010, 0.004, 0.02, 5.0)
        _, energy_ab = batched_execution([a, b])
        _, energy_ba = batched_execution([b, a])
        # a first: (0.02+1.0*0.01) + (0.02+5.0*0.01) + 1.0*0.004 = 0.104
        assert energy_ab == pytest.approx(0.104, rel=1e-12)
        # b first: same busy terms + 5.0*0.004 = 0.120
        assert energy_ba == pytest.approx(0.120, rel=1e-12)

    def test_zero_overhead_batch(self):
        p = PathProfile(0.003, 0.0, 0.004, 2.0)
        latency, energy = batched_execution([p, p])
        assert latency == pytest.approx(0.006, rel=1e-12)
        assert energy == pytest.approx(2 * (0.004 + 2.0 * 0.003), rel=1e-12)
