"""Autograd engine tests: gradients against finite differences, graph
mechanics, broadcasting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn.tensor import Tensor, concat, is_grad_enabled, no_grad, stack


class TestBasics:
    def test_dtype_coercion(self):
        assert Tensor([1, 2, 3]).dtype == np.float64

    def test_float32_preserved(self):
        assert Tensor(np.zeros(2, dtype=np.float32)).dtype == np.float32

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == 3.5
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_detach_cuts_graph(self):
        x = Tensor([1.0], requires_grad=True)
        y = (x * 2).detach()
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2).backward()

    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert not y.requires_grad
        assert is_grad_enabled()


class TestArithmeticGradients:
    def check(self, fn, *shapes, gradcheck_atol=1e-6):
        rng = np.random.default_rng(0)
        xs = [rng.normal(size=s) for s in shapes]
        tensors = [Tensor(x, requires_grad=True) for x in xs]
        out = fn(*tensors)
        out.sum().backward()
        for i, (x, t) in enumerate(zip(xs, tensors)):
            def scalar(arr, i=i):
                args = [Tensor(a) for a in xs]
                args[i] = Tensor(arr)
                return float(fn(*args).data.sum())

            from tests.conftest import numeric_gradient

            numeric = numeric_gradient(scalar, x)
            np.testing.assert_allclose(t.grad, numeric, atol=gradcheck_atol, rtol=1e-4)

    def test_add(self):
        self.check(lambda a, b: a + b, (3, 2), (3, 2))

    def test_add_broadcast(self):
        self.check(lambda a, b: a + b, (3, 2), (2,))

    def test_mul_broadcast_scalar_shape(self):
        self.check(lambda a, b: a * b, (2, 3), (1, 3))

    def test_sub_and_neg(self):
        self.check(lambda a, b: a - b, (4,), (4,))

    def test_div(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(3,)) + 5, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)) + 5, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b.data)
        np.testing.assert_allclose(b.grad, -a.data / b.data**2)

    def test_pow(self):
        self.check(lambda a: a**3, (5,))

    def test_pow_requires_scalar_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_matmul(self):
        self.check(lambda a, b: a @ b, (3, 4), (4, 2))

    def test_rsub_rmul_radd(self):
        x = Tensor([2.0], requires_grad=True)
        y = 3.0 - x
        z = 2.0 * y + 1.0
        z.sum().backward()
        assert x.grad[0] == pytest.approx(-2.0)


class TestReductionsAndShaping:
    def test_sum_axis_keepdims(self, gradcheck):
        gradcheck(lambda t: t.sum(axis=1, keepdims=True), np.random.default_rng(2).normal(size=(3, 4)))

    def test_sum_negative_axis(self, gradcheck):
        gradcheck(lambda t: t.sum(axis=-1), np.random.default_rng(3).normal(size=(2, 5)))

    def test_mean_matches_sum(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 3), 1 / 6))

    def test_var_biased(self):
        x = np.random.default_rng(4).normal(size=(8,))
        assert Tensor(x).var().item() == pytest.approx(np.var(x))

    def test_max_gradient_splits_ties(self):
        x = Tensor(np.asarray([1.0, 2.0, 2.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self, gradcheck):
        gradcheck(lambda t: t.max(axis=0), np.random.default_rng(5).normal(size=(4, 3)))

    def test_reshape_roundtrip(self, gradcheck):
        gradcheck(lambda t: t.reshape(6), np.random.default_rng(6).normal(size=(2, 3)))

    def test_transpose(self, gradcheck):
        gradcheck(lambda t: t.transpose(1, 0), np.random.default_rng(7).normal(size=(2, 3)))

    def test_getitem_fancy(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        y = x[np.asarray([0, 0, 2])]
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0])

    def test_pad2d(self, gradcheck):
        gradcheck(lambda t: t.pad2d(1), np.random.default_rng(8).normal(size=(1, 2, 3, 3)))

    def test_pad2d_zero_noop(self):
        x = Tensor(np.ones((1, 1, 2, 2)))
        assert x.pad2d(0) is x


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "sqrt", "relu", "sigmoid", "tanh", "swish"])
    def test_gradients(self, name, gradcheck):
        x = np.random.default_rng(9).normal(size=(3, 3))
        if name == "sqrt":
            x = np.abs(x) + 0.5
        gradcheck(lambda t: getattr(t, name)(), x)

    def test_log_grad(self, gradcheck):
        gradcheck(lambda t: t.log(), np.abs(np.random.default_rng(10).normal(size=(4,))) + 0.5)

    def test_relu_forward(self):
        np.testing.assert_array_equal(
            Tensor(np.asarray([-1.0, 2.0])).relu().data, [0.0, 2.0]
        )

    def test_swish_equals_x_sigmoid(self):
        x = np.random.default_rng(11).normal(size=(5,))
        expected = x / (1 + np.exp(-x))
        np.testing.assert_allclose(Tensor(x).swish().data, expected)


class TestConcatStack:
    def test_concat_grad_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = concat([a, b], axis=0)
        (out * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_stack_grad_routing(self):
        tensors = [Tensor(np.full(3, float(i)), requires_grad=True) for i in range(3)]
        out = stack(tensors, axis=0)
        (out[1] * 5).sum().backward()
        assert tensors[0].grad is None or np.all(tensors[0].grad == 0)
        np.testing.assert_allclose(tensors[1].grad, np.full(3, 5.0))


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4  # x used twice
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_diamond_graph(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a * b).backward()  # d/dx (6x^2) = 12x
        assert x.grad[0] == pytest.approx(12.0)

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(hnp.arrays(np.float64, hnp.array_shapes(max_dims=2, max_side=4),
                      elements=st.floats(-3, 3)))
    def test_sum_gradient_is_ones(self, x):
        t = Tensor(x, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(x))
