"""Deployment study: design-time ideal mapping vs runtime controllers.

HADAS optimises designs under the *ideal* input-to-exit mapping (paper
§IV-C) and claims compatibility with any runtime controller.  This example
quantifies the gap: it trains a miniature multi-exit network, then replays
the same evaluation stream through

* the oracle controller (the design-time reference),
* entropy-threshold controllers at several operating points,
* a max-confidence controller,

reporting accuracy / energy / latency per policy, with the DVFS governor
applying a searched operating point.
"""

from __future__ import annotations

import numpy as np

from repro.arch.space import miniature_space
from repro.accuracy.surrogate import AccuracySurrogate
from repro.data import SyntheticVisionDataset
from repro.eval.static import StaticEvaluator
from repro.exits.multi_exit import MultiExitNetwork
from repro.exits.placement import ExitPlacement
from repro.exits.training import train_exits
from repro.hardware.platform import get_platform
from repro.runtime.controller import (
    ConfidenceThresholdController,
    EntropyThresholdController,
    OracleController,
    tune_thresholds,
)
from repro.runtime.governor import DvfsGovernor
from repro.runtime.simulator import StreamSimulator
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import Nsga2Config
from repro.supernet.pretrain import pretrain_supernet
from repro.supernet.supernet import MiniSupernet


def main() -> None:
    # ---- train a miniature multi-exit network (the logits source) -------
    space = miniature_space(num_classes=8)
    dataset = SyntheticVisionDataset(num_classes=8, image_size=32, seed=11)
    train_x, train_y, _ = dataset.generate(384, split="train")
    eval_x, eval_y, _ = dataset.generate(256, split="test")

    supernet = MiniSupernet(space, seed=0)
    pretrain_supernet(supernet, train_x, train_y, steps=60, seed=0)
    backbone = space.decode(space.max_genome())
    total = backbone.total_mbconv_layers
    placement = ExitPlacement(total, tuple(range(5, total)))
    network = MultiExitNetwork(supernet, backbone, placement, seed=1)
    train_exits(network, train_x, train_y, steps=80, seed=2)
    exit_logits, final_logits = network.predict_all(eval_x)

    # ---- hardware-side costs for the same design (full-scale analogue) ---
    # The cost model needs a full-scale backbone; we map the miniature
    # design onto its full-space twin for realistic mJ numbers.
    from repro.baselines.attentivenas import attentivenas_model

    twin = attentivenas_model("a3")
    platform = get_platform("tx2-gpu")
    surrogate = AccuracySurrogate(seed=7)
    static_eval = StaticEvaluator(platform, surrogate, seed=7)
    engine = InnerEngine(
        twin, static_eval, surrogate.accuracy_fraction(twin),
        nsga=Nsga2Config(population=10, generations=4), seed=7,
    )
    inner = engine.run()
    searched = inner.best.payload["evaluation"].setting
    twin_total = twin.total_mbconv_layers
    # Spread the miniature exits over the twin's depth range.
    scaled_positions = tuple(
        sorted({min(twin_total - 1, max(5, round(p * twin_total / total)))
                for p in placement.positions})
    )
    twin_placement = ExitPlacement(twin_total, scaled_positions)
    governor = DvfsGovernor(default=searched)
    simulator = StreamSimulator(engine.evaluator, twin_placement, governor)

    # ---- controllers ------------------------------------------------------
    num_exits = twin_placement.num_exits
    usable = exit_logits[:num_exits]
    policies: dict[str, object] = {"oracle (design-time)": OracleController()}
    for rate in (0.2, 0.4, 0.6):
        thresholds = tune_thresholds(usable, target_exit_rate=rate, kind="entropy")
        policies[f"entropy (rate={rate:.1f})"] = EntropyThresholdController(
            thresholds, num_exits
        )
    policies["confidence (0.85)"] = ConfidenceThresholdController(0.85, num_exits)

    print(f"design: exits at {twin_placement.positions}, DVFS {searched}")
    print(f"{'policy':26s} {'accuracy':>9s} {'energy mJ':>10s} {'latency ms':>11s} {'early-exit %':>13s}")
    reports = {}
    for name, controller in policies.items():
        report = simulator.simulate(usable, final_logits, eval_y, controller)
        reports[name] = report
        print(
            f"{name:26s} {report.accuracy:9.3f} {report.mean_energy_j * 1e3:10.1f} "
            f"{report.mean_latency_s * 1e3:11.1f} {report.early_exit_fraction * 100:13.1f}"
        )
    oracle = reports["oracle (design-time)"]
    entropy = reports["entropy (rate=0.4)"]
    print(
        f"\nDesign-time (oracle) vs deployed (entropy rate=0.4): "
        f"{(oracle.accuracy - entropy.accuracy) * 100:+.1f} accuracy points for "
        f"{(1 - entropy.mean_energy_j / oracle.mean_energy_j) * 100:+.1f}% energy — "
        "the ideal-mapping gap HADAS accepts at design time (paper §IV-C)."
    )


if __name__ == "__main__":
    main()
