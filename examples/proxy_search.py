"""Proxy-accelerated search: the paper's own cost-reduction extension.

"HADAS's search overhead can be reduced to 1 GPU day if a proxy model
replaced the HW-in-the-loop setup."  This example quantifies that trade:

1. fit a :class:`~repro.hardware.proxy.HardwareProxy` on a handful of
   measured (network, DVFS) points;
2. report its held-out latency/energy error;
3. sweep the DVFS grid for several subnets with both the proxy and the
   HW-in-the-loop path, comparing the *chosen operating points* — the
   decision that actually matters to the search.
"""

from __future__ import annotations

import numpy as np

from repro.arch.cost import estimate_cost
from repro.arch.space import BackboneSpace
from repro.baselines.attentivenas import attentivenas_models
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.measurement import HardwareInTheLoop
from repro.hardware.platform import get_platform
from repro.hardware.proxy import HardwareProxy


def main() -> None:
    platform = get_platform("tx2-gpu")
    hwil = HardwareInTheLoop(platform, noise_cv=0.01, seed=0)
    dvfs = DvfsSpace(platform)
    models = attentivenas_models()

    train_costs = [estimate_cost(models[n]) for n in ("a0", "a2", "a4", "a6")]
    proxy = HardwareProxy(platform).fit(train_costs, hwil, settings_per_network=10, seed=0)
    held_out = [estimate_cost(models[n]) for n in ("a1", "a3", "a5")]
    accuracy = proxy.validate(held_out, hwil, settings_per_network=6, seed=1)
    print(f"proxy fitted on {proxy.num_training_points} measurements")
    print(f"held-out MAPE: latency {accuracy.latency_mape * 100:.1f}%, "
          f"energy {accuracy.energy_mape * 100:.1f}%")

    # Does the proxy pick the same DVFS operating points the device would?
    space = BackboneSpace()
    rng = np.random.default_rng(4)
    agreements, regrets = [], []
    print("\nenergy-optimal DVFS choice, proxy vs device:")
    for i in range(6):
        cost = estimate_cost(space.sample(rng))
        true_best = min(
            dvfs.all_settings(), key=lambda s: hwil.measure(cost, s).energy_j_mean
        )
        proxy_best = min(
            dvfs.all_settings(), key=lambda s: proxy.predict_energy_j(cost, s)
        )
        true_e = hwil.measure(cost, true_best).energy_j_mean
        picked_e = hwil.measure(cost, proxy_best).energy_j_mean
        regret = picked_e / true_e - 1.0
        agreements.append(proxy_best == true_best)
        regrets.append(regret)
        print(f"  subnet {i}: device {true_best} | proxy {proxy_best} "
              f"| energy regret {regret * 100:+.1f}%")
    print(f"\nexact agreement {sum(agreements)}/6; mean energy regret "
          f"{np.mean(regrets) * 100:.1f}% — most picks land within ~2% of the "
          "device optimum (occasional out-of-distribution subnets regress "
          "further); that is the fidelity the paper trades for a ~2-3x "
          "cheaper search.")


if __name__ == "__main__":
    main()
