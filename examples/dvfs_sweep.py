"""DVFS landscape study: energy/latency across the frequency grids.

Sweeps the full (core, EMC) grid of each platform for a compact (a0) and a
large (a6) baseline, printing the energy-optimal operating points and the
energy-latency trade-off curve — the landscape the paper's inner engine
searches.  Also ablates per-exit DVFS against a single static setting.
"""

from __future__ import annotations

from repro.arch.cost import estimate_cost
from repro.baselines.attentivenas import attentivenas_model
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import list_platforms
from repro.utils.ascii_plot import scatter


def sweep_platform(platform) -> None:
    dvfs = DvfsSpace(platform)
    model = EnergyModel(platform)
    default = dvfs.default_setting()
    print(f"\n=== {platform.name} ({dvfs.cardinality} DVFS settings) ===")
    series = {}
    for name in ("a0", "a6"):
        cost = estimate_cost(attentivenas_model(name))
        points = []
        best = None
        for setting in dvfs.all_settings():
            report = model.network_report(cost, setting)
            points.append((report.latency_s * 1e3, report.energy_j * 1e3))
            if best is None or report.energy_j < best[0].energy_j:
                best = (report, setting)
        # Distinct first letters so the ASCII markers differ.
        series["small a0" if name == "a0" else "Large a6"] = points
        report_default = model.network_report(cost, default)
        best_report, best_setting = best
        gain = 1.0 - best_report.energy_j / report_default.energy_j
        print(
            f"  {name}: default {report_default.energy_j * 1e3:7.1f} mJ @ {default} | "
            f"optimal {best_report.energy_j * 1e3:7.1f} mJ @ {best_setting} "
            f"({gain * 100:.1f}% gain, {best_report.latency_s / report_default.latency_s:.2f}x latency)"
        )
    print()
    print(scatter(series, title=f"{platform.name}: DVFS grid (energy vs latency)",
                  xlabel="latency ms", ylabel="energy mJ", width=64, height=14))


def main() -> None:
    for platform in list_platforms():
        sweep_platform(platform)

    # Ablation: EMC-only vs core-only scaling on the TX2 GPU.
    platform = [p for p in list_platforms() if p.key == "tx2-gpu"][0]
    dvfs = DvfsSpace(platform)
    model = EnergyModel(platform)
    cost = estimate_cost(attentivenas_model("a0"))
    default = dvfs.default_setting()
    e_default = model.network_energy_j(cost, default)
    core_only = min(
        (model.network_energy_j(cost, dvfs.decode(i, len(platform.emc_freqs_ghz) - 1))
         for i in range(len(platform.core_freqs_ghz))),
    )
    emc_only = min(
        (model.network_energy_j(cost, dvfs.decode(len(platform.core_freqs_ghz) - 1, j))
         for j in range(len(platform.emc_freqs_ghz))),
    )
    joint = min(model.network_energy_j(cost, s) for s in dvfs.all_settings())
    print("\nTX2 GPU / a0 — which knob matters (energy gain vs default):")
    print(f"  core-frequency only : {(1 - core_only / e_default) * 100:5.1f}%")
    print(f"  EMC-frequency only  : {(1 - emc_only / e_default) * 100:5.1f}%")
    print(f"  joint (core x EMC)  : {(1 - joint / e_default) * 100:5.1f}%")
    print("Joint scaling beats either knob alone — why F is searched jointly with X.")


if __name__ == "__main__":
    main()
