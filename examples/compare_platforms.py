"""Cross-platform study: the same co-search on all four edge devices.

Runs HADAS on the AGX Volta GPU, Carmel CPU, TX2 Pascal GPU and Denver CPU
(paper Fig. 5's four panels) and compares what the search converges to on
each: selected backbone size, exit counts, DVFS operating points, and the
achievable accuracy/energy envelope.
"""

from __future__ import annotations

from repro import HadasConfig, HadasSearch
from repro.hardware.platform import PAPER_PLATFORM_ORDER, get_platform
from repro.utils.tables import format_table


def main() -> None:
    rows = []
    for key in PAPER_PLATFORM_ORDER:
        platform = get_platform(key)
        config = HadasConfig(
            platform=key, seed=7,
            outer_population=10, outer_generations=3,
            inner_population=12, inner_generations=4, ioe_candidates=3,
        )
        result = HadasSearch(config).run()
        best = result.selected_model()
        ev = best.payload["evaluation"]
        st = best.payload["static"]
        rows.append(
            [
                platform.name,
                st.accuracy,
                ev.dynamic_accuracy * 100,
                st.energy_j * 1e3,
                ev.dynamic_energy_j * 1e3,
                ev.energy_gain * 100,
                ev.placement.num_exits,
                f"{ev.setting.core_ghz:.2f}/{ev.setting.emc_ghz:.2f}",
            ]
        )
        print(f"{platform.name}: done "
              f"({result.num_evaluations[0]} static / {result.num_evaluations[1]} dynamic evals)")

    print()
    print(
        format_table(
            [
                "Platform", "Static acc %", "Dyn acc %", "E_static mJ",
                "E_dyn mJ", "E gain %", "#exits", "DVFS GHz",
            ],
            rows,
            title="Selected DyNN per platform (same seed and budget)",
        )
    )
    print(
        "\nGPUs run faster at higher power; CPUs are slower, so run-to-idle "
        "pressure pushes their DVFS operating points and exit placements "
        "differently — the reason the paper searches F per platform."
    )


if __name__ == "__main__":
    main()
