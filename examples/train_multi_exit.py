"""The trainable path end-to-end: supernet -> frozen backbone -> exits.

Reproduces the paper's training mechanics at miniature scale, with real
gradient descent on the numpy substrate:

1. generate a synthetic class-conditional dataset with per-sample difficulty
   (the CIFAR-100 stand-in);
2. pretrain a weight-sharing supernet with sandwich sampling;
3. sample a subnet backbone, freeze it, attach exit branches at searched
   positions and train them with the hybrid NLL + KD loss (paper eq. 4);
4. evaluate N_i, ideal-mapping usage and union accuracy — the same
   statistics the surrogate oracle produces for the CIFAR-100-scale search.

Takes ~1-2 minutes (pure numpy).  Shrink ``--steps`` to go faster.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.arch.space import miniature_space
from repro.data import SyntheticVisionDataset
from repro.exits.multi_exit import MultiExitNetwork
from repro.exits.placement import ExitPlacement
from repro.exits.training import train_exits
from repro.supernet.pretrain import pretrain_supernet
from repro.supernet.supernet import MiniSupernet


def main(pretrain_steps: int = 40, exit_steps: int = 60, n_train: int = 512) -> None:
    space = miniature_space(num_classes=8)
    dataset = SyntheticVisionDataset(num_classes=8, image_size=32, seed=3)
    train_x, train_y, _ = dataset.generate(n_train, split="train")
    eval_x, eval_y, _ = dataset.generate(256, split="val")
    print(f"dataset: {n_train} train / 256 eval samples, "
          f"nearest-prototype reference accuracy "
          f"{dataset.bayes_reference_accuracy(eval_x, eval_y):.3f}")

    supernet = MiniSupernet(space, seed=0)
    print(f"supernet parameters: {supernet.num_parameters():,}")
    pre = pretrain_supernet(
        supernet, train_x, train_y, steps=pretrain_steps, batch_size=32, seed=0
    )
    print(f"pretraining: loss {pre.losses[0]:.3f} -> {pre.final_loss:.3f}; "
          f"min-subnet acc {pre.min_subnet_accuracy:.3f}, "
          f"max-subnet acc {pre.max_subnet_accuracy:.3f}")

    # Sample a mid-size subnet as the backbone and freeze it (paper: exits
    # train without touching backbone weights).
    backbone = space.decode(space.max_genome())
    total = backbone.total_mbconv_layers
    placement = ExitPlacement(total, tuple(range(5, total)))
    network = MultiExitNetwork(supernet, backbone, placement, freeze_backbone=True, seed=1)
    print(f"\nbackbone: {backbone.describe()} ({total} MBConv layers)")
    print(f"exits at layers {placement.positions}")

    result = train_exits(
        network, train_x, train_y, eval_x, eval_y,
        steps=exit_steps, batch_size=32, kd_weight=1.0, temperature=4.0, seed=2,
    )
    print(f"exit training: hybrid loss {result.losses[0]:.3f} -> {result.final_loss:.3f}")

    stats = result.evaluation
    print("\nheld-out evaluation (ideal input-to-exit mapping):")
    print(f"  final accuracy      : {stats.final_accuracy:.3f}")
    print(f"  dynamic accuracy    : {stats.dynamic_accuracy:.3f} (union of all heads)")
    print(f"  per-exit N_i        : {[round(float(n), 3) for n in stats.n_i]}")
    print(f"  dissimilarity (eq.7): {[round(float(d), 3) for d in stats.dissimilarity]}")
    print(f"  usage fractions     : {[round(float(u), 3) for u in stats.usage]}")
    print(f"  early-exit fraction : {stats.early_exit_fraction:.3f}")

    # The monotone-coverage property the surrogate oracle assumes.
    n_i = stats.n_i
    spearman = np.corrcoef(np.argsort(np.argsort(n_i)), np.arange(len(n_i)))[0, 1]
    print(f"\nN_i grows with depth (rank correlation {spearman:.2f}) — the "
          "property the CIFAR-100-scale exit oracle encodes analytically.")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pretrain-steps", type=int, default=40)
    parser.add_argument("--exit-steps", type=int, default=60)
    parser.add_argument("--train-samples", type=int, default=512)
    args = parser.parse_args()
    main(args.pretrain_steps, args.exit_steps, args.train_samples)
