"""Quickstart: run a HADAS search on a simulated Jetson TX2 GPU.

Runs the full bi-level co-optimisation (backbone x exits x DVFS) at a small
budget, then prints the backbone Pareto, the selected DyNN and its dynamic
behaviour.  Takes a few seconds on a laptop.

Usage::

    python examples/quickstart.py [platform]

where ``platform`` is one of agx-gpu, carmel-cpu, tx2-gpu (default),
denver-cpu.
"""

from __future__ import annotations

import sys

from repro import HadasConfig, HadasSearch


def main(platform: str = "tx2-gpu") -> None:
    config = HadasConfig(
        platform=platform,
        seed=7,
        outer_population=12,
        outer_generations=4,
        inner_population=14,
        inner_generations=5,
        ioe_candidates=3,
    )
    print(f"Running HADAS on {platform} "
          f"(OOE {config.outer_iterations} iters, IOE {config.inner_iterations} iters/backbone)")
    result = HadasSearch(config).run()

    static_evals, dynamic_evals = result.num_evaluations
    print(f"\nEvaluations: {static_evals} static (S), {dynamic_evals} dynamic (D)")

    print(f"\nBackbone Pareto front ({len(result.backbone_pareto())} members):")
    for ind in sorted(result.backbone_pareto(), key=lambda i: -i.payload["static"].accuracy)[:8]:
        st = ind.payload["static"]
        print(
            f"  acc {st.accuracy:5.2f}%  latency {st.latency_s * 1e3:6.1f} ms  "
            f"energy {st.energy_j * 1e3:6.1f} mJ   {ind.payload['config'].describe()}"
        )

    best = result.selected_model()
    ev = best.payload["evaluation"]
    st = best.payload["static"]
    print("\nSelected DyNN (utopia point of the dynamic Pareto):")
    print(f"  backbone            : {best.payload['config'].describe()}")
    print(f"  static accuracy     : {st.accuracy:.2f}%")
    print(f"  dynamic accuracy    : {ev.dynamic_accuracy * 100:.2f}% (ideal mapping)")
    print(f"  exits at layers     : {ev.placement.positions}")
    print(f"  DVFS setting        : {ev.setting}")
    print(f"  energy              : {st.energy_j * 1e3:.1f} -> {ev.dynamic_energy_j * 1e3:.1f} mJ "
          f"({ev.energy_gain * 100:.1f}% gain)")
    print(f"  latency             : {st.latency_s * 1e3:.1f} -> {ev.dynamic_latency_s * 1e3:.1f} ms "
          f"({ev.latency_gain * 100:.1f}% gain)")
    print(f"  per-exit N_i        : {[round(float(n), 3) for n in ev.exit_stats.n_i]}")
    print(f"  exit usage fractions: {[round(float(u), 3) for u in ev.exit_stats.usage]}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "tx2-gpu")
