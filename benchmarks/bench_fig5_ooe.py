"""Fig. 5 (top row) bench: OOE static Pareto fronts vs baselines.

Per platform, the explored backbones should (i) span beyond the baseline
family on both objectives and (ii) dominate at least one baseline — the
paper's AGX anchors are a6 dominated at ~33 % less energy and a1 dominated
at +2.34 % accuracy.
"""

from __future__ import annotations

from repro.experiments import fig5


def test_fig5_ooe(benchmark, profile):
    result = benchmark(fig5.run, profile)
    print()
    for platform, panel in result.panels.items():
        series = panel.static_series()
        domination = panel.baseline_domination()
        print(f"--- {platform}: {len(series['explored'])} backbones explored")
        for name, stats in domination.items():
            print(
                f"    vs {name}: best energy reduction at >= accuracy "
                f"{stats['energy_reduction'] * 100:6.1f}%, best accuracy gain at "
                f"<= energy {stats['accuracy_gain']:+5.2f} pts"
            )

    for platform, panel in result.panels.items():
        domination = panel.baseline_domination()
        # Some baseline is dominated with a tangible energy reduction
        # (paper: a6 at -33% on the AGX GPU).
        best_reduction = max(s["energy_reduction"] for s in domination.values())
        assert best_reduction > 0.10, platform
        # And some baseline is beaten on accuracy at no extra energy
        # (paper: a1 at +2.34%).
        best_gain = max(s["accuracy_gain"] for s in domination.values())
        assert best_gain > 0.25, platform
