"""Serving-grid benchmark: load patterns × scenarios × policies.

Sweeps every load generator (poisson, bursty, diurnal, replay) against the
deployment scenarios (nominal, thermal-cap, battery-budget) for both the
static baseline and the adaptive governor, fanning all cells concurrently
through the engine's EvaluationService (results keyed into the persistent
ResultCache when ``--cache-dir`` is set).  Emits a JSON report and asserts
the PR's acceptance contract: in at least one bursty scenario the adaptive
governor beats the static baseline on deadline-miss rate at equal-or-lower
energy per request.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke --json serving-report.json
    PYTHONPATH=src python benchmarks/bench_serving.py --workers 8 --cache-dir .cache/engine
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.obs import trace
from repro.obs.export import counter_rollup
from repro.obs.trace import Recorder
from repro.serving.harness import ServingSpec, sweep
from repro.serving.scenarios import SCENARIO_NAMES
from repro.serving.telemetry import ServingReport
from repro.serving.workload import LOAD_PATTERNS
from repro.utils.serialization import save_json

POLICIES = ("static", "adaptive")


def build_grid(duration_s: float, seed: int, model: str, platform: str) -> list[ServingSpec]:
    """The full pattern × scenario × policy grid."""
    return [
        ServingSpec(
            platform=platform,
            model=model,
            pattern=pattern,
            scenario=scenario,
            policy=policy,
            duration_s=duration_s,
            seed=seed,
        )
        for pattern in LOAD_PATTERNS
        for scenario in SCENARIO_NAMES
        for policy in POLICIES
    ]


def summarize(specs: list[ServingSpec], reports: list[ServingReport]) -> dict:
    """Per-cell adaptive-vs-static verdicts plus the acceptance flag."""
    cells: dict[tuple[str, str], dict[str, ServingReport]] = {}
    for spec, report in zip(specs, reports):
        cells.setdefault((spec.pattern, spec.scenario), {})[spec.policy] = report
    rows = []
    for (pattern, scenario), pair in sorted(cells.items()):
        static, adaptive = pair["static"], pair["adaptive"]
        rows.append(
            {
                "pattern": pattern,
                "scenario": scenario,
                "static_miss_rate": static.deadline_miss_rate,
                "adaptive_miss_rate": adaptive.deadline_miss_rate,
                "static_energy_j": static.energy_per_request_j,
                "adaptive_energy_j": adaptive.energy_per_request_j,
                "static_accuracy": static.accuracy,
                "adaptive_accuracy": adaptive.accuracy,
                "adaptive_wins_both": bool(
                    adaptive.deadline_miss_rate < static.deadline_miss_rate
                    and adaptive.energy_per_request_j <= static.energy_per_request_j
                ),
            }
        )
    bursty_wins = [r for r in rows if r["pattern"] == "bursty" and r["adaptive_wins_both"]]
    return {
        "cells": rows,
        "wins_both": sum(r["adaptive_wins_both"] for r in rows),
        "bursty_win": bool(bursty_wins),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="short traces (CI)")
    parser.add_argument("--duration-s", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--model", default="a3")
    parser.add_argument("--platform", default="tx2-gpu")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--executor", default="auto",
                        help="auto routes the codec-backed grid to a process pool")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--json", default="serving-report.json")
    args = parser.parse_args(argv)

    duration = args.duration_s or (12.0 if args.smoke else 16.0)
    specs = build_grid(duration, args.seed, args.model, args.platform)
    # Record the whole sweep: worker-side spans/counters (and per-worker
    # cache hit/miss deltas) ride home through the result envelopes, so the
    # rollup covers process-pool cells too.  Tracing changes no result bits.
    recorder = Recorder()
    trace.install(recorder)
    start = time.perf_counter()
    try:
        reports = sweep(
            specs, workers=args.workers, executor=args.executor,
            cache_dir=args.cache_dir,
        )
    finally:
        trace.uninstall()
    elapsed = time.perf_counter() - start
    summary = summarize(specs, reports)
    observability = counter_rollup(recorder)

    header = (
        f"{'pattern':>8s} {'scenario':>15s} {'miss% s/a':>12s} "
        f"{'mJ/req s/a':>13s} {'acc s/a':>11s} {'win':>4s}"
    )
    print(header)
    print("-" * len(header))
    for row in summary["cells"]:
        print(
            f"{row['pattern']:>8s} {row['scenario']:>15s} "
            f"{row['static_miss_rate'] * 100:5.1f}/{row['adaptive_miss_rate'] * 100:5.1f} "
            f"{row['static_energy_j'] * 1e3:6.1f}/{row['adaptive_energy_j'] * 1e3:6.1f} "
            f"{row['static_accuracy'] * 100:5.1f}/{row['adaptive_accuracy'] * 100:5.1f} "
            f"{'yes' if row['adaptive_wins_both'] else '':>4s}"
        )
    print(
        f"\n{len(specs)} cells in {elapsed:.1f}s "
        f"({args.workers} workers, {args.executor} executor); "
        f"adaptive wins both axes in {summary['wins_both']}/{len(summary['cells'])} cells"
    )
    obs_counters = observability["counters"]
    queue_wait = observability["histograms"].get("engine.queue_wait_s", {})
    print(
        "observability rollup: "
        f"{obs_counters.get('serving.batches', 0):.0f} batches, "
        f"{obs_counters.get('serving.governor_decisions', 0):.0f} governor "
        f"decisions, queue-wait p95 {queue_wait.get('p95', 0.0) * 1e3:.1f} ms, "
        f"cache hit rates {observability['cache_hit_rates'] or '(no cache)'}"
    )

    # Contract: every cell served traffic and produced a meaningful report.
    for report in reports:
        assert report.num_requests > 0, "empty trace"
        assert report.num_batches > 0, "no batches dispatched"
        assert report.total_energy_j > 0, "no energy accounted"
        assert report.latency_ms_p99 >= report.latency_ms_p50 > 0
    # Acceptance: adaptive beats static on misses at <= energy in a bursty cell.
    assert summary["bursty_win"], (
        "adaptive governor failed to beat the static baseline on deadline-miss "
        "rate at equal-or-lower energy in every bursty scenario"
    )

    if args.json:
        payload = {
            "grid": [dataclasses.asdict(spec) for spec in specs],
            "reports": reports,
            "summary": summary,
            "observability": observability,
            "elapsed_s": elapsed,
        }
        path = save_json(payload, args.json)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
