"""Fleet-serving benchmark: load pattern × router × fleet composition.

Sweeps the request routers (round_robin, least_backlog, difficulty_aware)
over heterogeneous fleet compositions and load patterns, fanning all cells
concurrently through the engine's EvaluationService (results keyed into the
persistent ResultCache under the ``fleet`` namespace when ``--cache-dir``
is set).  ``--engine`` picks the fleet dispatch core (block-routed
``indexed`` or the scalar ``reference`` loop — bit-identical reports
either way).  Emits a JSON report and asserts the PR's acceptance contract: in
every bursty cell the difficulty-aware router matches-or-beats round-robin
on p95 latency at equal-or-lower fleet energy — and strictly beats it
somewhere.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke --json fleet-report.json
    PYTHONPATH=src python benchmarks/bench_fleet.py --workers 8 --cache-dir .cache/engine
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from repro.serving.fleet import FleetReport, FleetSpec, fleet_sweep
from repro.serving.router import ROUTER_NAMES
from repro.serving.simulator import ENGINE_NAMES
from repro.utils.serialization import save_json

#: Fleet compositions under test: a GPU pair and the full four-platform mix.
FLEETS = {
    "duo": ("tx2-gpu", "agx-gpu"),
    "quad": ("agx-gpu", "carmel-cpu", "tx2-gpu", "denver-cpu"),
}

PATTERNS = ("poisson", "bursty")


def build_grid(
    duration_s: float, seed: int, model: str, engine: str = "indexed"
) -> list[FleetSpec]:
    """The full fleet × pattern × router grid."""
    return [
        FleetSpec(
            platforms=platforms,
            model=model,
            pattern=pattern,
            router=router,
            duration_s=duration_s,
            seed=seed,
            engine=engine,
        )
        for platforms in FLEETS.values()
        for pattern in PATTERNS
        for router in ROUTER_NAMES
    ]


def summarize(specs: list[FleetSpec], reports: list[FleetReport]) -> dict:
    """Per-cell router-vs-router verdicts plus the acceptance flags."""
    cells: dict[tuple[tuple[str, ...], str], dict[str, FleetReport]] = {}
    for spec, report in zip(specs, reports):
        cells.setdefault((spec.platforms, spec.pattern), {})[spec.router] = report
    rows = []
    for (platforms, pattern), by_router in sorted(cells.items()):
        rr, da = by_router["round_robin"], by_router["difficulty_aware"]
        rows.append(
            {
                "platforms": list(platforms),
                "pattern": pattern,
                "p95_ms": {name: r.latency_ms_p95 for name, r in by_router.items()},
                "miss_rate": {name: r.deadline_miss_rate for name, r in by_router.items()},
                "energy_j": {name: r.total_energy_j for name, r in by_router.items()},
                "da_wins_both": bool(
                    da.latency_ms_p95 <= rr.latency_ms_p95
                    and da.total_energy_j <= rr.total_energy_j
                ),
                "da_strict_p95_win": bool(da.latency_ms_p95 < rr.latency_ms_p95),
            }
        )
    bursty = [row for row in rows if row["pattern"] == "bursty"]
    return {
        "cells": rows,
        "wins_both": sum(row["da_wins_both"] for row in rows),
        "bursty_win": bool(bursty) and all(row["da_wins_both"] for row in bursty)
        and any(row["da_strict_p95_win"] for row in bursty),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="short traces (CI)")
    parser.add_argument("--duration-s", type=float, default=None)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--model", default="a3")
    parser.add_argument("--engine", default="indexed", choices=list(ENGINE_NAMES),
                        help="fleet dispatch core for every cell; both engines "
                             "are bit-identical, so the router contract holds "
                             "either way (engine rides the cell cache key)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--executor", default="auto",
                        help="auto routes the codec-backed grid to a process pool")
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--json", default="fleet-report.json")
    args = parser.parse_args(argv)

    duration = args.duration_s or (8.0 if args.smoke else 16.0)
    specs = build_grid(duration, args.seed, args.model, args.engine)
    start = time.perf_counter()
    reports = fleet_sweep(
        specs, workers=args.workers, executor=args.executor, cache_dir=args.cache_dir
    )
    elapsed = time.perf_counter() - start
    summary = summarize(specs, reports)

    header = (
        f"{'fleet':>28s} {'pattern':>8s} {'router':>17s} "
        f"{'p95 ms':>9s} {'miss%':>6s} {'J':>8s} {'win':>4s}"
    )
    print(header)
    print("-" * len(header))
    for spec, report in zip(specs, reports):
        row = next(
            r for r in summary["cells"]
            if r["platforms"] == list(spec.platforms) and r["pattern"] == spec.pattern
        )
        print(
            f"{'+'.join(spec.platforms):>28s} {spec.pattern:>8s} {spec.router:>17s} "
            f"{report.latency_ms_p95:9.1f} {report.deadline_miss_rate * 100:6.1f} "
            f"{report.total_energy_j:8.2f} "
            f"{'yes' if spec.router == 'difficulty_aware' and row['da_wins_both'] else '':>4s}"
        )
    print(
        f"\n{len(specs)} cells in {elapsed:.1f}s "
        f"({args.workers} workers, {args.executor} executor, "
        f"{args.engine} engine); "
        f"difficulty_aware wins both axes in {summary['wins_both']}/{len(summary['cells'])} cells"
    )

    # Contract: every cell served traffic and produced a meaningful report.
    for report in reports:
        assert report.num_requests > 0, "empty trace"
        assert report.total_energy_j > 0, "no energy accounted"
        assert report.latency_ms_p99 >= report.latency_ms_p50 > 0
        assert len(report.devices) == len(report.platforms)
        assert sum(d.requests for d in report.devices) == report.num_requests
    # Acceptance: difficulty-aware >= round-robin on p95 at <= fleet energy in
    # every bursty cell (strictly better p95 in at least one).
    assert summary["bursty_win"], (
        "difficulty_aware router failed to match-or-beat round_robin on p95 "
        "latency at equal-or-lower fleet energy across the bursty cells"
    )

    if args.json:
        payload = {
            "grid": [dataclasses.asdict(spec) for spec in specs],
            "reports": reports,
            "summary": summary,
            "elapsed_s": elapsed,
        }
        path = save_json(payload, args.json)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
