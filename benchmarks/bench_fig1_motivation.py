"""Fig. 1 bench: the motivational example (a0, a6 vs a HADAS model)."""

from __future__ import annotations

from repro.experiments import fig1


def test_fig1_motivation(benchmark, profile):
    result = benchmark(fig1.run, profile)
    print()
    print(fig1.render(result))

    hadas = result.model("HADAS")
    a0 = result.model("a0")
    a6 = result.model("a6")

    # Left barplot: HADAS outperforms a0 and is on par with a6 after the
    # static + dynamic optimisations.
    assert hadas.static_acc > a0.static_acc
    assert hadas.dyn_acc >= a6.dyn_acc - 0.75
    # Dynamicity improves accuracy for the HADAS model.
    assert hadas.dyn_acc > hadas.static_acc

    # Right barplot: a0 (most compact) wins at the Static stage...
    assert a0.static_energy_mj < hadas.static_energy_mj
    # ... but every Dyn/HW optimisation narrows HADAS's gap or flips it.
    assert hadas.dyn_energy_mj < hadas.static_energy_mj
    assert hadas.dyn_hw_energy_mj <= hadas.dyn_energy_mj
    static_gap = hadas.static_energy_mj / a0.static_energy_mj
    dyn_hw_gap = hadas.dyn_hw_energy_mj / a0.dyn_hw_energy_mj
    assert dyn_hw_gap < static_gap
    # And HADAS ends far ahead of a6 (paper: 57%).
    assert result.dyn_hw_gain_vs_a6() > 0.20
