"""Serving-core scale benchmark: trace size × fleet size, old vs new engine.

Measures the million-request serving core this PR introduces: the
vectorized trace generators, the array-backed batcher and the indexed
event loop with compiled per-config pricing — against the retained
reference engine (``MicroBatcher`` + per-batch ``execute_batch``), which
is the pre-PR per-request/per-batch Python loop, kept bit-identical as
``ServingSimulator(engine="reference")``.

The grid sweeps trace scales (10⁴ → 10⁶ requests by default) down one
axis and fleet compositions (single device, duo, quad) down the other,
reporting wall clock, simulated-requests-per-wall-second and peak RSS for
every cell.  The reference engine runs up to ``--reference-cap`` requests
(its per-batch Python pricing makes 10⁶ impractical — that being the
point); its throughput is per-batch work and therefore scale-independent,
so the speedup contract compares the indexed engine's largest run against
the reference engine's largest feasible run.

Fleet rows now sweep the same engine axis: every fleet × scale cell runs
the block-routed ``FleetSimulator(engine="indexed")`` dispatch core, the
scalar ``engine="reference"`` loop up to ``--reference-cap``, and one
``--steal`` variant at the largest scale (measured, but outside the
identity contract by design).

Contracts (asserted):

- single-device: indexed req/s at the largest scale ≥ ``--speedup-floor``
  × the reference engine's largest feasible run (10× full, 3× smoke);
- fleet: indexed req/s at the largest fleet scale ≥ ``--fleet-floor`` ×
  the reference fleet loop's largest feasible run (1.25× full, 1.1×
  smoke — block routing is bit-identical, so the floor is honest wall
  clock, not a vector-vs-Python cliff; measured ≈1.5× at 10⁶);
- identity: both engines produce full-field-equal ``FleetReport``s on a
  shared probe cell;
- memory: peak RSS over the whole grid stays under ``--rss-ceiling``
  (no full-trace ``tolist`` materialization).

Both engines serve every request they are offered.  The JSON payload
embeds a ``fleet.*`` counter rollup (blocks, block-size histogram,
steals) from a separate observed run, so the dispatch shape ships with
the numbers.

Run directly::

    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --smoke --json scale.json
    PYTHONPATH=src python benchmarks/bench_fleet_scale.py --max-scale 1000000
"""

from __future__ import annotations

import argparse
import resource
import sys
import time

from repro.obs import trace as obs_trace
from repro.obs.export import counter_rollup
from repro.obs.trace import Recorder
from repro.serving.fleet import (
    FleetSimulator,
    FleetSpec,
    build_fleet_stacks,
    build_fleet_trace_and_stream,
)
from repro.serving.governor import AdaptiveGovernor, StaticPolicy
from repro.serving.harness import ServingSpec, build_serving_stack
from repro.serving.simulator import ServingSimulator
from repro.serving.workload import make_trace
from repro.utils.serialization import save_json

#: Fleet compositions on the second axis (1 × is the single-device engine).
FLEETS = {
    "duo": ("tx2-gpu", "agx-gpu"),
    "quad": ("agx-gpu", "carmel-cpu", "tx2-gpu", "denver-cpu"),
}


def peak_rss_mb() -> float:
    """Peak resident set of this process so far, in MiB (monotone)."""
    kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return kb / 1024.0  # Linux reports KiB


def _simulator(stack, spec: ServingSpec, engine: str) -> ServingSimulator:
    if spec.policy == "static":
        policy = StaticPolicy(stack.static_config)
    else:
        policy = AdaptiveGovernor(stack.ladder, stack.batch_policy)
    return ServingSimulator(
        evaluator=stack.evaluator,
        placement=stack.placement,
        policy=policy,
        ladder=stack.ladder,
        scenario=stack.scenario,
        slo_s=spec.slo_ms / 1e3,
        batch_policy=stack.batch_policy,
        window_s=spec.window_ms / 1e3,
        engine=engine,
    )


def run_single(spec: ServingSpec, scale: int, engine: str, seed: int) -> dict:
    """One single-device cell at ``scale`` requests through ``engine``."""
    stack = build_serving_stack(spec)
    duration_s = scale / stack.rate_hz
    t0 = time.perf_counter()
    trace = make_trace(spec.pattern, stack.rate_hz, duration_s, seed=seed)
    trace_s = time.perf_counter() - t0
    stream = stack.synthesizer.synthesize(trace.difficulties())
    simulator = _simulator(stack, spec, engine)
    t0 = time.perf_counter()
    report = simulator.run(
        trace, stream, platform=spec.platform, model=spec.model_label, seed=seed
    )
    wall_s = time.perf_counter() - t0
    assert report.num_served == report.num_requests, "unbounded queue dropped work"
    return {
        "engine": engine,
        "fleet": "single",
        "platforms": [spec.platform],
        "requests": report.num_requests,
        "trace_build_s": trace_s,
        "wall_s": wall_s,
        "rps": report.num_requests / wall_s,
        "rss_mb": peak_rss_mb(),
        "p95_ms": report.latency_ms_p95,
        "total_energy_j": report.total_energy_j,
    }


def _fleet_spec(
    platforms: tuple[str, ...], scale: int, seed: int, engine: str, steal: bool,
    **extra,
) -> FleetSpec:
    """A fleet spec provisioned so the trace carries ``scale`` requests."""
    probe = FleetSpec(platforms=platforms, duration_s=1.0, seed=seed, **extra)
    fleet_rate = sum(stack.rate_hz for stack in build_fleet_stacks(probe))
    return FleetSpec(
        platforms=platforms,
        duration_s=scale / fleet_rate,
        seed=seed,
        engine=engine,
        steal=steal,
        **extra,
    )


def run_fleet(
    name: str,
    platforms: tuple[str, ...],
    scale: int,
    engine: str,
    seed: int,
    steal: bool = False,
) -> dict:
    """One fleet cell at ``scale`` total requests across ``platforms``."""
    spec = _fleet_spec(platforms, scale, seed, engine, steal)
    stacks = build_fleet_stacks(spec)
    t0 = time.perf_counter()
    trace, stream = build_fleet_trace_and_stream(spec, stacks)
    trace_s = time.perf_counter() - t0
    simulator = FleetSimulator(spec, stacks)
    t0 = time.perf_counter()
    report = simulator.run(trace, stream)
    wall_s = time.perf_counter() - t0
    if not steal:
        assert report.num_served == report.num_requests, "unbounded fleet dropped work"
    return {
        "engine": engine + ("+steal" if steal else ""),
        "fleet": name,
        "platforms": list(platforms),
        "requests": report.num_requests,
        "trace_build_s": trace_s,
        "wall_s": wall_s,
        "rps": report.num_requests / wall_s,
        "rss_mb": peak_rss_mb(),
        "p95_ms": report.latency_ms_p95,
        "total_energy_j": report.total_energy_j,
        "num_stolen": report.num_stolen,
    }


def check_fleet_identity(
    platforms: tuple[str, ...], scale: int, seed: int
) -> dict:
    """Run both engines on one shared (trace, stream) cell; full-field compare."""
    reports = {}
    for engine in ("reference", "indexed"):
        spec = _fleet_spec(platforms, scale, seed, engine, steal=False)
        stacks = build_fleet_stacks(spec)
        trace, stream = build_fleet_trace_and_stream(spec, stacks)
        reports[engine] = FleetSimulator(spec, stacks).run(trace, stream)
    return {
        "scale": scale,
        "platforms": list(platforms),
        "identical": reports["indexed"] == reports["reference"],
    }


def fleet_counter_rollup(
    platforms: tuple[str, ...], scale: int, seed: int
) -> dict:
    """One observed indexed run (with stealing armed) under a live recorder.

    Separate from the timed rows so recorder overhead never lands in the
    throughput contract; surfaces ``fleet.blocks``, the ``fleet.block_size``
    histogram and ``fleet.steals`` next to the numbers, bench_dynamic_eval
    style.
    """
    # round_robin + bursty load is the configuration where stealing earns its
    # keep: the load-blind router builds imbalance the governor-horizon thief
    # then drains (backlog-aware routers self-balance and rarely steal).
    spec = _fleet_spec(
        platforms, scale, seed, "indexed", steal=True,
        pattern="bursty", utilization=0.95, router="round_robin",
    )
    stacks = build_fleet_stacks(spec)
    trace, stream = build_fleet_trace_and_stream(spec, stacks)
    recorder = Recorder()
    obs_trace.install(recorder)
    try:
        FleetSimulator(spec, stacks).run(trace, stream)
    finally:
        obs_trace.uninstall()
    return counter_rollup(recorder)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small scales + relaxed speedup floor (CI)")
    parser.add_argument("--max-scale", type=int, default=None,
                        help="largest trace scale (default 10⁶; smoke 2×10⁴)")
    parser.add_argument("--reference-cap", type=int, default=None,
                        help="largest scale the reference engine runs at "
                             "(default 10⁵; smoke uncapped)")
    parser.add_argument("--speedup-floor", type=float, default=None,
                        help="required indexed/reference rps ratio "
                             "(default 10; smoke 3)")
    parser.add_argument("--fleet-floor", type=float, default=None,
                        help="required fleet indexed/reference rps ratio "
                             "(default 1.25; smoke 1.0)")
    parser.add_argument("--rss-ceiling", type=float, default=2048.0,
                        help="peak RSS ceiling over the whole grid, MiB")
    parser.add_argument("--policy", default="static", choices=("static", "adaptive"),
                        help="governor for the single-device scale runs")
    parser.add_argument("--pattern", default="poisson")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--json", default=None, help="write rows to this JSON file")
    args = parser.parse_args(argv)

    if args.smoke:
        scales = [5_000, 20_000]
        reference_cap = args.reference_cap or 20_000
        floor = args.speedup_floor or 3.0
        fleet_floor = args.fleet_floor or 1.1
        fleet_scales = [20_000]
        fleets = {"duo": FLEETS["duo"]}
        identity_scale = 5_000
    else:
        scales = [10_000, 100_000, 1_000_000]
        reference_cap = args.reference_cap or 100_000
        floor = args.speedup_floor or 10.0
        fleet_floor = args.fleet_floor or 1.25
        fleet_scales = [10_000, 100_000, 1_000_000]
        fleets = dict(FLEETS)
        identity_scale = 10_000
    if args.max_scale is not None:
        scales = [s for s in scales if s <= args.max_scale] or [args.max_scale]
        fleet_scales = [s for s in fleet_scales if s <= args.max_scale] or [args.max_scale]

    spec = ServingSpec(pattern=args.pattern, policy=args.policy, seed=args.seed)
    rows = []
    header = (
        f"{'engine':>10s} {'fleet':>7s} {'requests':>10s} {'trace s':>8s} "
        f"{'wall s':>8s} {'req/s':>10s} {'RSS MiB':>8s}"
    )
    print(header)
    print("-" * len(header))
    for scale in scales:
        for engine in ("reference", "indexed"):
            if engine == "reference" and scale > reference_cap:
                continue
            row = run_single(spec, scale, engine, args.seed)
            rows.append(row)
            print(
                f"{row['engine']:>10s} {row['fleet']:>7s} {row['requests']:>10d} "
                f"{row['trace_build_s']:8.2f} {row['wall_s']:8.2f} "
                f"{row['rps']:10.0f} {row['rss_mb']:8.0f}"
            )
    def emit(row: dict) -> None:
        rows.append(row)
        print(
            f"{row['engine']:>10s} {row['fleet']:>7s} {row['requests']:>10d} "
            f"{row['trace_build_s']:8.2f} {row['wall_s']:8.2f} "
            f"{row['rps']:10.0f} {row['rss_mb']:8.0f}"
        )

    for scale in fleet_scales:
        for name, platforms in fleets.items():
            for engine in ("reference", "indexed"):
                if engine == "reference" and scale > reference_cap:
                    continue
                emit(run_fleet(name, platforms, scale, engine, args.seed))
    # One stealing row per fleet at the largest scale: measured, but kept out
    # of the speedup contract — stealing departs from the reference semantics.
    for name, platforms in fleets.items():
        emit(run_fleet(name, platforms, fleet_scales[-1], "indexed",
                       args.seed, steal=True))

    identity = check_fleet_identity(
        next(iter(fleets.values())), identity_scale, args.seed
    )
    print(
        f"\nengine identity at {identity['scale']:,} requests "
        f"({'/'.join(identity['platforms'])}): "
        f"{'OK' if identity['identical'] else 'MISMATCH'}"
    )

    reference = [r for r in rows if r["engine"] == "reference"]
    singles = {
        "reference": [r for r in reference if r["fleet"] == "single"],
        "indexed": [r for r in rows
                    if r["engine"] == "indexed" and r["fleet"] == "single"],
    }
    fleet_rows = {
        engine: [r for r in rows if r["engine"] == engine and r["fleet"] != "single"]
        for engine in ("reference", "indexed")
    }
    by_requests = lambda r: r["requests"]  # noqa: E731
    best_reference = max(singles["reference"], key=by_requests)
    largest_indexed = max(singles["indexed"], key=by_requests)
    speedup = largest_indexed["rps"] / best_reference["rps"]
    best_fleet_ref = max(fleet_rows["reference"], key=by_requests)
    largest_fleet_idx = max(fleet_rows["indexed"], key=by_requests)
    fleet_speedup = largest_fleet_idx["rps"] / best_fleet_ref["rps"]
    peak_rss = max(r["rss_mb"] for r in rows)
    summary = {
        "speedup": speedup,
        "speedup_floor": floor,
        "speedup_ok": speedup >= floor,
        "reference_rps": best_reference["rps"],
        "indexed_rps": largest_indexed["rps"],
        "largest_scale": largest_indexed["requests"],
        "fleet_speedup": fleet_speedup,
        "fleet_floor": fleet_floor,
        "fleet_speedup_ok": fleet_speedup >= fleet_floor,
        "fleet_reference_rps": best_fleet_ref["rps"],
        "fleet_indexed_rps": largest_fleet_idx["rps"],
        "fleet_largest_scale": largest_fleet_idx["requests"],
        "fleet_identity_ok": identity["identical"],
        "peak_rss_mb": peak_rss,
        "rss_ceiling_mb": args.rss_ceiling,
        "rss_ok": peak_rss <= args.rss_ceiling,
    }
    print(
        f"indexed engine at {largest_indexed['requests']:,} requests: "
        f"{largest_indexed['rps']:,.0f} simulated req/s — {speedup:.1f}x the "
        f"reference loop ({best_reference['rps']:,.0f} req/s at "
        f"{best_reference['requests']:,})"
    )
    print(
        f"indexed fleet at {largest_fleet_idx['requests']:,} requests "
        f"({largest_fleet_idx['fleet']}): {largest_fleet_idx['rps']:,.0f} req/s — "
        f"{fleet_speedup:.2f}x the reference fleet loop "
        f"({best_fleet_ref['rps']:,.0f} req/s at {best_fleet_ref['requests']:,}); "
        f"peak RSS {peak_rss:,.0f} MiB"
    )
    assert identity["identical"], "indexed fleet engine diverged from reference"
    assert summary["speedup_ok"], (
        f"indexed engine speedup {speedup:.1f}x below the {floor:.0f}x floor"
    )
    assert summary["fleet_speedup_ok"], (
        f"fleet speedup {fleet_speedup:.2f}x below the {fleet_floor:.2f}x floor"
    )
    assert summary["rss_ok"], (
        f"peak RSS {peak_rss:.0f} MiB above the {args.rss_ceiling:.0f} MiB ceiling"
    )

    if args.json:
        counters = fleet_counter_rollup(
            next(iter(fleets.values())), identity_scale, args.seed
        )
        path = save_json(
            {"rows": rows, "summary": summary, "identity": identity,
             "counters": counters},
            args.json,
        )
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
