"""Table III bench: DyNN comparison on the TX2 Pascal GPU.

Shape assertions (paper-vs-measured is recorded in EXPERIMENTS.md):

* energies sit at the paper's scale (tens to hundreds of mJ);
* early exiting cuts every model's energy substantially; DVFS adds more;
* dynamicity lifts accuracy (EEx acc > static acc) for every model;
* the best HADAS model is markedly more energy-efficient than the most
  accurate baseline a6 while at least matching its EEx accuracy.
"""

from __future__ import annotations

from repro.experiments import table3


def test_table3_dynn(benchmark, profile):
    result = benchmark(table3.run, profile)
    print()
    print(table3.render(result))

    for row in result.rows:
        assert 30.0 < row.baseline_energy_mj < 800.0
        assert row.eex_energy_mj < row.baseline_energy_mj * 0.85
        assert row.eex_dvfs_energy_mj <= row.eex_energy_mj + 1e-9
        assert row.eex_acc > row.baseline_acc

    a0 = result.row("AttentiveNAS-a0")
    a6 = result.row("AttentiveNAS-a6")
    b1 = result.row("HADAS-b1")
    # a6 is the most accurate baseline and the least efficient one.
    assert a6.baseline_acc > a0.baseline_acc
    assert a6.baseline_energy_mj > a0.baseline_energy_mj
    # b1 matches a6's dynamic accuracy but is far more energy-efficient
    # (paper: 57% better EEx+DVFS energy; our simulator reproduces the
    # direction with a >= 20% margin).
    gain_vs_a6, _ = result.headline_gains()
    assert b1.eex_acc >= a6.eex_acc - 0.5
    assert gain_vs_a6 > 0.20
