"""Shared benchmark fixtures.

Every artifact bench prints the regenerated paper rows/series to stdout (run
pytest with ``-s`` to see them) and asserts the qualitative *shape* the
paper reports — who wins, in which direction, within loose factors.  The
platform runs are memoised by :mod:`repro.experiments.runner`, so a full
``pytest benchmarks/ --benchmark-only`` performs each search once.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import Profile


@pytest.fixture(scope="session")
def profile() -> Profile:
    """Fast search-budget profile shared by all benches."""
    return Profile.fast(seed=7)
