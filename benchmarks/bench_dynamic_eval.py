"""Dynamic-evaluation kernel bench: cost tables vs the reference loop.

Replays the exact (placement, setting) stream a fast-budget IOE produces
through two :class:`DynamicEvaluator` instances — the vectorized cost-table
kernel and the pre-refactor reference loop (``use_tables=False``) — and
reports evaluations/sec before vs after.  Also records:

* a worst-case stream of all-distinct random (placement, setting) pairs
  (no table reuse at all);
* a warm-bank phase — new placements at already-seen DVFS settings — with
  call-count instrumentation proving the hot path performs **zero**
  per-layer timing-kernel invocations (neither ``layer_timing`` nor
  ``batch_timing`` runs once the tables exist);
* a population-scale phase — N distinct placements swept over a batch of
  settings through ``evaluate_population`` (one stacked gather per
  (population, setting)) vs the per-call cost-table kernel, with the exit
  oracle pre-warmed on both sides so the comparison isolates the cost
  kernels, plus the oracle's column cache hit/miss counters;
* an accuracy-side phase — the batched exit-oracle statistics kernel
  (stacked packed-column masking with shared-prefix reuse) vs the
  per-placement popcount loop, on column-prewarmed oracles so the timed
  region isolates the ideal-mapping statistics, with the oracle's LRU
  memo/prefix-cache counters in the report;
* tiny- and fast-budget IOE wall-clock rows (full inner NSGA-II runs in
  all three modes: reference loop, per-call tables, population kernel);
* a paper-budget (50 x 70) IOE wall-clock row — the fused
  accuracy+cost kernel stack vs the PR-6 population mode (batched oracle
  and fused objectives off, the retained reference non-dominated sort
  swapped in; archive bookkeeping stays vectorized, which makes the
  measured speedup conservative).

Asserts the acceptance contracts: ≥ 5x single-worker speedup on the
fast-budget IOE evaluation loop (tables vs reference), ≥ 5x
evaluations/sec at population scale (population kernel vs per-call
tables), ≥ 3x oracle statistics throughput (batched vs per-placement),
≥ 3x paper-budget IOE wall clock (fused vs PR-6 mode), bit-identical
results everywhere, and a table-driven (O(exits)) hot path.

Run directly::

    PYTHONPATH=src python benchmarks/bench_dynamic_eval.py --smoke --json dyneval-report.json
    PYTHONPATH=src python benchmarks/bench_dynamic_eval.py --platform carmel-cpu
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.accuracy.exit_model import BackboneExitOracle
from repro.accuracy.surrogate import AccuracySurrogate
from repro.arch.cost import estimate_cost
from repro.arch.space import BackboneSpace
from repro.baselines.attentivenas import attentivenas_model
from repro.eval.dynamic import DynamicEvaluator
from repro.eval.static import StaticEvaluator
from repro.exits.placement import MIN_EXIT_POSITION, ExitPlacement
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import get_platform
from repro.obs import trace
from repro.obs.export import counter_rollup
from repro.obs.trace import Recorder
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import Nsga2Config
from repro.utils.serialization import save_json

#: The acceptance floor for the fast-budget IOE evaluation-loop speedup.
SPEEDUP_FLOOR = 5.0

#: Acceptance floors for the accuracy-side kernel: batched oracle
#: statistics throughput and the paper-budget fused-IOE wall clock.
ACCURACY_SPEEDUP_FLOOR = 3.0
PAPER_SPEEDUP_FLOOR = 3.0

BUDGETS = {"tiny": (10, 4), "fast": (16, 6), "paper": (50, 70)}


class _Workbench:
    """Shared heavy objects for one (platform, backbone, seed)."""

    def __init__(self, platform_key: str, model_name: str, seed: int):
        self.platform_key = platform_key
        self.seed = seed
        self.platform = get_platform(platform_key)
        self.space = BackboneSpace()
        self.surrogate = AccuracySurrogate(self.space, seed=seed)
        self.static = StaticEvaluator(self.platform, self.surrogate, seed=seed)
        self.config = attentivenas_model(model_name)
        self.cost = estimate_cost(self.config)
        self.dvfs = DvfsSpace(self.platform)
        self.energy_model = EnergyModel(self.platform)
        base = self.energy_model.network_report(self.cost, self.dvfs.default_setting())
        self.baseline_energy_j = base.energy_j
        self.baseline_latency_s = base.latency_s
        self.accuracy = self.surrogate.accuracy_fraction(self.config)

    def oracle(self, use_batched_stats: bool = True) -> BackboneExitOracle:
        """A fresh exit oracle (own columns, own memo/prefix caches)."""
        return BackboneExitOracle(
            self.config.key,
            self.config.total_mbconv_layers,
            self.accuracy,
            seed=self.seed,
            use_batched_stats=use_batched_stats,
        )

    def evaluator(self, use_tables: bool) -> DynamicEvaluator:
        """A fresh evaluator (own oracle, own caches, own table bank)."""
        return DynamicEvaluator(
            config=self.config,
            cost=self.cost,
            oracle=self.oracle(),
            energy_model=self.energy_model,
            baseline_energy_j=self.baseline_energy_j,
            baseline_latency_s=self.baseline_latency_s,
            use_tables=use_tables,
        )

    def inner_engine(
        self,
        budget: str,
        use_tables: bool,
        use_population_kernel: bool = True,
        use_batched_oracle: bool = True,
        use_fused_objectives: bool = True,
    ) -> InnerEngine:
        population, generations = BUDGETS[budget]
        return InnerEngine(
            self.config,
            self.static,
            self.accuracy,
            nsga=Nsga2Config(population=population, generations=generations),
            seed=self.seed,
            use_tables=use_tables,
            use_population_kernel=use_population_kernel,
            use_batched_oracle=use_batched_oracle,
            use_fused_objectives=use_fused_objectives,
        )

    def record_ioe_stream(self, budget: str) -> list[tuple[ExitPlacement, object]]:
        """The exact evaluation stream one IOE run at ``budget`` performs.

        Recorded with the population kernel *off* so every evaluation goes
        through ``evaluate`` — the stream (and the run itself) is
        bit-identical either way; this only chooses the hookable path.
        """
        engine = self.inner_engine(budget, use_tables=True, use_population_kernel=False)
        stream: list[tuple[ExitPlacement, object]] = []
        original = engine.evaluator.evaluate

        def recording(placement, setting):
            stream.append((placement, setting))
            return original(placement, setting)

        engine.evaluator.evaluate = recording
        engine.run()
        return stream

    def random_placement(self, rng: np.random.Generator) -> ExitPlacement:
        """One random placement (1-6 exits over the legal position range)."""
        total = self.config.total_mbconv_layers
        width = int(rng.integers(1, 7))
        positions = tuple(
            sorted(
                rng.choice(
                    np.arange(MIN_EXIT_POSITION, total), size=width, replace=False
                ).tolist()
            )
        )
        return ExitPlacement(total, positions)

    def random_pairs(self, count: int) -> list[tuple[ExitPlacement, object]]:
        """All-distinct random (placement, setting) pairs (worst case)."""
        rng = np.random.default_rng(self.seed)
        return [
            (self.random_placement(rng), self.dvfs.sample(rng)) for _ in range(count)
        ]


def _replay_rate(bench: _Workbench, pairs, use_tables: bool, reps: int) -> float:
    """Best-of-``reps`` evaluations/sec over ``pairs`` on fresh evaluators."""
    best = float("inf")
    for _ in range(reps):
        evaluator = bench.evaluator(use_tables)
        start = time.perf_counter()
        for placement, setting in pairs:
            evaluator.evaluate(placement, setting)
        best = min(best, time.perf_counter() - start)
    return len(pairs) / best


def _assert_bit_identity(bench: _Workbench, pairs) -> None:
    vectorized, reference = bench.evaluator(True), bench.evaluator(False)
    for placement, setting in pairs:
        fast = vectorized.evaluate(placement, setting)
        slow = reference.evaluate(placement, setting)
        assert np.array_equal(fast.exit_energy_j, slow.exit_energy_j)
        assert np.array_equal(fast.exit_latency_s, slow.exit_latency_s)
        assert fast.dynamic_energy_j == slow.dynamic_energy_j
        assert np.array_equal(fast.scores, slow.scores)
        assert fast.d_score == slow.d_score


def _warm_phase(bench: _Workbench, pairs) -> dict:
    """New placements at seen settings: zero timing-kernel invocations."""
    evaluator = bench.evaluator(True)
    for placement, setting in pairs:
        evaluator.evaluate(placement, setting)
    rng = np.random.default_rng(bench.seed + 1)
    fresh = [(bench.random_placement(rng), setting) for _, setting in pairs]
    latency = evaluator.energy_model.latency
    before = (latency.layer_timing_calls, latency.batch_timing_calls)
    start = time.perf_counter()
    for placement, setting in fresh:
        evaluator.evaluate(placement, setting)
    elapsed = time.perf_counter() - start
    after = (latency.layer_timing_calls, latency.batch_timing_calls)
    return {
        "evals": len(fresh),
        "evals_per_s": len(fresh) / elapsed,
        "layer_timing_calls": after[0] - before[0],
        "batch_timing_calls": after[1] - before[1],
    }


def _distinct_placements(bench: _Workbench, count: int, seed: int) -> list[ExitPlacement]:
    rng = np.random.default_rng(seed)
    placements: list[ExitPlacement] = []
    seen: set[tuple[int, ...]] = set()
    while len(placements) < count:
        placement = bench.random_placement(rng)
        if placement.positions not in seen:
            seen.add(placement.positions)
            placements.append(placement)
    return placements


def _distinct_settings(bench: _Workbench, count: int, seed: int) -> list:
    rng = np.random.default_rng(seed)
    settings: list = []
    seen: set[tuple[float, float]] = set()
    count = min(count, bench.dvfs.cardinality)
    while len(settings) < count:
        setting = bench.dvfs.sample(rng)
        if (setting.core_ghz, setting.emc_ghz) not in seen:
            seen.add((setting.core_ghz, setting.emc_ghz))
            settings.append(setting)
    return settings


def _population_phase(
    bench: _Workbench, population: int, num_settings: int, reps: int
) -> dict:
    """Population-scale sweep: stacked kernel vs the per-call table kernel.

    Both sides run on fresh evaluators with the exit oracle pre-warmed for
    the whole population (the oracle is the accuracy side, identical work
    either way), so the timed region isolates the cost kernels: per-call
    pays N Python calls per setting, the population path one stacked
    gather.  Bit-identity of every field is asserted against the per-call
    kernel for all (placement, setting) pairs and against the pre-table
    reference loop for a subset.
    """
    placements = _distinct_placements(bench, population, bench.seed + 17)
    settings = _distinct_settings(bench, num_settings, bench.seed + 29)
    evals = len(placements) * len(settings)

    def per_call_pass() -> float:
        evaluator = bench.evaluator(True)
        evaluator.oracle.evaluate_placements(placements)
        start = time.perf_counter()
        for setting in settings:
            for placement in placements:
                evaluator.evaluate(placement, setting)
        return time.perf_counter() - start

    def population_pass() -> tuple[float, DynamicEvaluator]:
        evaluator = bench.evaluator(True)
        evaluator.oracle.evaluate_placements(placements)
        start = time.perf_counter()
        for setting in settings:
            evaluator.evaluate_population(placements, setting)
        return time.perf_counter() - start, evaluator

    per_call_wall = min(per_call_pass() for _ in range(reps))
    timings = [population_pass() for _ in range(reps)]
    population_wall = min(wall for wall, _ in timings)
    oracle_stats = dict(timings[-1][1].oracle.column_stats)

    # Bit-identity: population vs per-call on everything, both vs the
    # reference per-layer loop on a subset.
    per_call = bench.evaluator(True)
    stacked = bench.evaluator(True)
    reference = bench.evaluator(False)
    for si, setting in enumerate(settings):
        batch = stacked.evaluate_population(placements, setting)
        for pi, (placement, fast) in enumerate(zip(placements, batch)):
            slow = per_call.evaluate(placement, setting)
            assert np.array_equal(fast.exit_energy_j, slow.exit_energy_j)
            assert np.array_equal(fast.exit_latency_s, slow.exit_latency_s)
            assert fast.dynamic_energy_j == slow.dynamic_energy_j
            assert fast.dynamic_latency_s == slow.dynamic_latency_s
            assert fast.energy_gain == slow.energy_gain
            assert fast.latency_gain == slow.latency_gain
            assert np.array_equal(fast.scores, slow.scores)
            assert fast.d_score == slow.d_score
            if si < 2 and pi < 24:
                loop = reference.evaluate(placement, setting)
                assert np.array_equal(fast.exit_energy_j, loop.exit_energy_j)
                assert fast.dynamic_energy_j == loop.dynamic_energy_j
                assert fast.d_score == loop.d_score

    return {
        "population": len(placements),
        "settings": len(settings),
        "evals": evals,
        "per_call_evals_per_s": evals / per_call_wall,
        "population_evals_per_s": evals / population_wall,
        "speedup": per_call_wall / population_wall,
        "oracle_columns": oracle_stats,
    }


def _accuracy_phase(bench: _Workbench, population: int, reps: int) -> dict:
    """Oracle statistics throughput: batched kernel vs per-placement loop.

    Both sides run on fresh oracles with every correctness column
    materialised up front (column construction is identical work either
    way), so the timed region isolates the ideal-mapping statistics: the
    per-placement path pays one popcount sweep per (placement, exit), the
    batched path one stacked pass over the packed column matrix with
    shared-prefix reuse.  Bit-identity of every statistics field is
    asserted across the whole population, and the batched oracle's LRU
    memo / prefix-cache counters land in the report.
    """
    placements = _distinct_placements(bench, population, bench.seed + 41)
    distinct = sorted({p for placement in placements for p in placement.positions})

    def timed_pass(use_batched: bool) -> tuple[float, BackboneExitOracle]:
        oracle = bench.oracle(use_batched_stats=use_batched)
        for position in distinct:
            oracle.exit_column(position)
        oracle.final_column()
        start = time.perf_counter()
        oracle.evaluate_placements(placements)
        return time.perf_counter() - start, oracle

    batched_runs = [timed_pass(True) for _ in range(reps)]
    per_placement_runs = [timed_pass(False) for _ in range(reps)]
    batched_wall = min(wall for wall, _ in batched_runs)
    per_placement_wall = min(wall for wall, _ in per_placement_runs)
    batched_oracle = batched_runs[-1][1]

    got = batched_oracle.evaluate_placements(placements)  # memo reads
    want = per_placement_runs[-1][1].evaluate_placements(placements)
    for fast, slow in zip(got, want):
        assert np.array_equal(fast.n_i, slow.n_i)
        assert np.array_equal(fast.usage, slow.usage)
        assert np.array_equal(fast.dissimilarity, slow.dissimilarity)
        assert fast.dynamic_accuracy == slow.dynamic_accuracy
        assert fast.final_accuracy == slow.final_accuracy

    return {
        "population": len(placements),
        "per_placement_evals_per_s": len(placements) / per_placement_wall,
        "batched_evals_per_s": len(placements) / batched_wall,
        "speedup": per_placement_wall / batched_wall,
        "oracle_memo": batched_oracle.memo_stats(),
    }


def _paper_ioe_row(bench: _Workbench) -> dict:
    """Paper-budget (50 x 70) IOE wall: fused stack vs the PR-6 mode.

    The PR-6 comparator is the population cost kernel *without* this PR's
    accuracy side — batched oracle and fused objectives off, and the
    retained reference non-dominated sort swapped into the NSGA-II module
    (the scalar ``dominates`` loop dominated the PR-6 profile).  Archive
    bookkeeping stays vectorized in both modes, so the measured speedup
    understates the true against-PR-6 ratio.  Both runs must agree on the
    best candidate's D score (full histories are flag-invariant; the
    equivalence tests assert that member by member).
    """
    import repro.search.nsga2 as nsga2_module

    from repro.metrics.pareto import non_dominated_sort_reference

    def timed_run(fused: bool) -> tuple[float, float, int]:
        engine = bench.inner_engine(
            "paper",
            use_tables=True,
            use_population_kernel=True,
            use_batched_oracle=fused,
            use_fused_objectives=fused,
        )
        vectorized_sort = nsga2_module.non_dominated_sort
        if not fused:
            nsga2_module.non_dominated_sort = non_dominated_sort_reference
        try:
            start = time.perf_counter()
            result = engine.run()
            wall = time.perf_counter() - start
        finally:
            nsga2_module.non_dominated_sort = vectorized_sort
        best = result.best.payload["evaluation"].d_score
        return wall, best, result.num_evaluations

    fused_wall, fused_best, evaluations = timed_run(True)
    pr6_wall, pr6_best, _ = timed_run(False)
    assert fused_best == pr6_best, (
        f"paper-budget IOE modes diverged: fused {fused_best} vs pr6 {pr6_best}"
    )
    return {
        "budget": "paper",
        "population": BUDGETS["paper"][0],
        "generations": BUDGETS["paper"][1],
        "evaluations": evaluations,
        "pr6_wall_s": pr6_wall,
        "fused_wall_s": fused_wall,
        "speedup": pr6_wall / fused_wall,
    }


def _observability_pass(bench: _Workbench, pairs, placements_hint: int) -> dict:
    """Counter rollup from a short instrumented replay (untimed, so the
    recorder's lock never touches the benchmark's timed loops).

    Replays the IOE stream through both kernels and one population sweep
    under a live recorder; the rollup lands in the JSON report so a CI
    artifact shows memo-hit rates, table-vs-reference path counts and
    population-kernel call counts next to the throughput numbers.
    """
    recorder = Recorder()
    trace.install(recorder)
    try:
        evaluator = bench.evaluator(True)
        for placement, setting in pairs:
            evaluator.evaluate(placement, setting)
        for placement, setting in pairs:  # second pass: all memo hits
            evaluator.evaluate(placement, setting)
        reference = bench.evaluator(False)
        for placement, setting in pairs[:40]:
            reference.evaluate(placement, setting)
        population = bench.evaluator(True)
        placements = _distinct_placements(bench, placements_hint, bench.seed + 17)
        population.evaluate_population(placements, bench.dvfs.default_setting())
        # A mixed-setting generation batch: surfaces the oracle's batch-size
        # and shared-prefix-reuse counters plus the generation grouping.
        generation = bench.evaluator(True)
        settings = _distinct_settings(bench, 4, bench.seed + 53)
        decoded = [
            (placement, settings[i % len(settings)])
            for i, placement in enumerate(placements)
        ]
        generation.evaluate_generation(decoded)
    finally:
        trace.uninstall()
    return counter_rollup(recorder)


def _ioe_wall_row(bench: _Workbench, budget: str) -> dict:
    modes = {
        "reference": (False, False),
        "per_call": (True, False),
        "population": (True, True),
    }
    walls, best_scores = {}, {}
    for mode, (use_tables, use_population_kernel) in modes.items():
        engine = bench.inner_engine(budget, use_tables, use_population_kernel)
        start = time.perf_counter()
        result = engine.run()
        walls[mode] = time.perf_counter() - start
        best_scores[mode] = result.best.payload["evaluation"].d_score
    assert len(set(best_scores.values())) == 1, (
        f"IOE modes diverged at {budget} budget: {best_scores}"
    )
    return {
        "budget": budget,
        "population": BUDGETS[budget][0],
        "generations": BUDGETS[budget][1],
        "evaluations": result.num_evaluations,
        "reference_wall_s": walls["reference"],
        "vectorized_wall_s": walls["per_call"],
        "population_wall_s": walls["population"],
        "speedup": walls["reference"] / walls["per_call"],
        "population_speedup": walls["reference"] / walls["population"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="fewer reps (CI)")
    parser.add_argument("--platform", default="tx2-gpu")
    parser.add_argument("--model", default="a3")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--pairs", type=int, default=None,
                        help="worst-case distinct-pair stream length")
    parser.add_argument("--json", default="dyneval-report.json")
    args = parser.parse_args(argv)

    reps = 3 if args.smoke else 5
    pair_count = args.pairs or (400 if args.smoke else 800)
    bench = _Workbench(args.platform, args.model, args.seed)

    ioe_stream = bench.record_ioe_stream("fast")
    _assert_bit_identity(bench, ioe_stream[:40])

    reference_rate = _replay_rate(bench, ioe_stream, use_tables=False, reps=reps)
    vectorized_rate = _replay_rate(bench, ioe_stream, use_tables=True, reps=reps)
    speedup = vectorized_rate / reference_rate

    unique_pairs = bench.random_pairs(pair_count)
    unique_reference = _replay_rate(bench, unique_pairs, use_tables=False, reps=1)
    unique_vectorized = _replay_rate(bench, unique_pairs, use_tables=True, reps=1)

    warm = _warm_phase(bench, ioe_stream)
    population = _population_phase(
        bench,
        population=256 if args.smoke else 384,
        num_settings=10 if args.smoke else 12,
        reps=reps,
    )
    # Grid-sweep scale: the exhaustive DVFS artifacts stream thousands of
    # placements per oracle, which is where prefix sharing amortises best.
    accuracy = _accuracy_phase(
        bench, population=1024 if args.smoke else 2048, reps=reps
    )
    ioe_rows = [_ioe_wall_row(bench, budget) for budget in ("tiny", "fast")]
    paper_row = _paper_ioe_row(bench)
    observability = _observability_pass(
        bench, ioe_stream, placements_hint=64 if args.smoke else 128
    )

    print(f"platform {args.platform}, backbone {args.model}, seed {args.seed}")
    print(f"{'stream':>28} {'evals':>6} {'ref/s':>8} {'vec/s':>8} {'speedup':>8}")
    print("-" * 64)
    print(
        f"{'fast-budget IOE replay':>28} {len(ioe_stream):>6} "
        f"{reference_rate:>8.0f} {vectorized_rate:>8.0f} {speedup:>7.1f}x"
    )
    print(
        f"{'distinct random pairs':>28} {len(unique_pairs):>6} "
        f"{unique_reference:>8.0f} {unique_vectorized:>8.0f} "
        f"{unique_vectorized / unique_reference:>7.1f}x"
    )
    print(
        f"{'warm bank (seen settings)':>28} {warm['evals']:>6} {'':>8} "
        f"{warm['evals_per_s']:>8.0f} {'':>8}"
    )
    print(
        f"{'population kernel':>28} {population['evals']:>6} "
        f"{population['per_call_evals_per_s']:>8.0f} "
        f"{population['population_evals_per_s']:>8.0f} "
        f"{population['speedup']:>7.1f}x"
    )
    print(
        f"{'oracle statistics (batched)':>28} {accuracy['population']:>6} "
        f"{accuracy['per_placement_evals_per_s']:>8.0f} "
        f"{accuracy['batched_evals_per_s']:>8.0f} "
        f"{accuracy['speedup']:>7.1f}x"
    )
    print(
        f"\nwarm hot path: {warm['layer_timing_calls']} layer_timing / "
        f"{warm['batch_timing_calls']} batch_timing calls (must be 0/0)"
    )
    print(
        f"population phase: {population['population']} placements x "
        f"{population['settings']} settings; oracle columns "
        f"{population['oracle_columns']}"
    )
    memo = accuracy["oracle_memo"]
    print(
        "oracle LRU caches: stats "
        f"{memo['stats']['size']}/{memo['stats']['maxsize']} "
        f"({memo['stats']['evictions']} evictions), prefix "
        f"{memo['prefix']['size']}/{memo['prefix']['maxsize']} "
        f"({memo['prefix']['hits']} hits)"
    )
    for row in ioe_rows:
        print(
            f"IOE {row['budget']:>4} budget ({row['population']}x{row['generations']}): "
            f"reference {row['reference_wall_s']:.3f}s, per-call "
            f"{row['vectorized_wall_s']:.3f}s ({row['speedup']:.1f}x), population "
            f"{row['population_wall_s']:.3f}s ({row['population_speedup']:.1f}x)"
        )
    print(
        f"IOE paper budget ({paper_row['population']}x{paper_row['generations']}): "
        f"pr6 mode {paper_row['pr6_wall_s']:.3f}s, fused "
        f"{paper_row['fused_wall_s']:.3f}s ({paper_row['speedup']:.1f}x)"
    )
    obs_counters = observability["counters"]
    print(
        "observability rollup: "
        f"{obs_counters.get('dyneval.evaluations', 0):.0f} evaluations / "
        f"{obs_counters.get('dyneval.memo_hits', 0):.0f} memo hits, "
        f"{obs_counters.get('dyneval.population_rows', 0):.0f} population rows, "
        f"{obs_counters.get('cost_table.builds', 0):.0f} table builds, "
        f"{obs_counters.get('oracle.batch_rows', 0):.0f} oracle batch rows / "
        f"{obs_counters.get('oracle.prefix_nodes', 0):.0f} prefix nodes / "
        f"{obs_counters.get('oracle.prefix_hits', 0):.0f} prefix hits, "
        f"{obs_counters.get('dyneval.generation_groups', 0):.0f} generation groups"
    )

    report = {
        "platform": args.platform,
        "model": args.model,
        "seed": args.seed,
        "ioe_replay": {
            "evals": len(ioe_stream),
            "reference_evals_per_s": reference_rate,
            "vectorized_evals_per_s": vectorized_rate,
            "speedup": speedup,
        },
        "distinct_pairs": {
            "evals": len(unique_pairs),
            "reference_evals_per_s": unique_reference,
            "vectorized_evals_per_s": unique_vectorized,
            "speedup": unique_vectorized / unique_reference,
        },
        "warm_bank": warm,
        "population_kernel": population,
        "accuracy_kernel": accuracy,
        "ioe_rows": ioe_rows,
        "paper_ioe": paper_row,
        "observability": observability,
        "summary": {
            "speedup_floor": SPEEDUP_FLOOR,
            "speedup_ok": bool(speedup >= SPEEDUP_FLOOR),
            "population_speedup_floor": SPEEDUP_FLOOR,
            "population_speedup_ok": bool(population["speedup"] >= SPEEDUP_FLOOR),
            "accuracy_speedup_floor": ACCURACY_SPEEDUP_FLOOR,
            "accuracy_speedup_ok": bool(
                accuracy["speedup"] >= ACCURACY_SPEEDUP_FLOOR
            ),
            "paper_ioe_speedup_floor": PAPER_SPEEDUP_FLOOR,
            "paper_ioe_speedup_ok": bool(
                paper_row["speedup"] >= PAPER_SPEEDUP_FLOOR
            ),
            "hot_path_table_driven": warm["layer_timing_calls"] == 0
            and warm["batch_timing_calls"] == 0,
        },
    }
    save_json(report, args.json)
    print(f"\nreport written to {args.json}")

    assert warm["layer_timing_calls"] == 0 and warm["batch_timing_calls"] == 0, (
        "warm-bank evaluations re-entered the timing kernel: "
        f"{warm['layer_timing_calls']} layer / {warm['batch_timing_calls']} batch calls"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast-budget IOE evaluation loop speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x acceptance floor"
    )
    assert population["speedup"] >= SPEEDUP_FLOOR, (
        f"population-kernel speedup {population['speedup']:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x acceptance floor at population scale"
    )
    assert accuracy["speedup"] >= ACCURACY_SPEEDUP_FLOOR, (
        f"batched oracle statistics speedup {accuracy['speedup']:.1f}x below "
        f"the {ACCURACY_SPEEDUP_FLOOR:.0f}x acceptance floor"
    )
    assert paper_row["speedup"] >= PAPER_SPEEDUP_FLOOR, (
        f"paper-budget fused IOE speedup {paper_row['speedup']:.1f}x below "
        f"the {PAPER_SPEEDUP_FLOOR:.0f}x acceptance floor"
    )
    for row in ioe_rows:
        assert row["speedup"] >= 1.0, (
            f"vectorized IOE slower than reference at {row['budget']} budget"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
