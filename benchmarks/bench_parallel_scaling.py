"""EvaluationService scaling bench: workers x cache temperature.

Runs the same HADAS search (fixed seed) under workers ∈ {1, 2, 4} and with a
cold vs warm persistent cache, recording wall-clock, evaluation counts and
cache accounting.  The assertions pin the engine's two contracts rather than
a speedup number (thread-level speedup on a numpy workload is hardware- and
GIL-dependent):

* every configuration produces the byte-identical dynamic Pareto front;
* a warm-cache re-run performs zero new static measurements and zero new
  inner-engine runs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.search.hadas import HadasConfig, HadasSearch

WORKER_COUNTS = (1, 2, 4)


def _config(**overrides) -> HadasConfig:
    base = dict(
        platform="tx2-gpu",
        seed=7,
        outer_population=8,
        outer_generations=3,
        inner_population=10,
        inner_generations=4,
        ioe_candidates=3,
        oracle_samples=512,
    )
    base.update(overrides)
    return HadasConfig(**base)


def _timed_run(config: HadasConfig):
    search = HadasSearch(config)
    start = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - start
    search.close()
    return search, result, elapsed


def _front_bytes(result) -> bytes:
    members = sorted(result.dynn_pareto(), key=lambda ind: ind.key())
    return np.stack([ind.objectives for ind in members]).tobytes()


def test_parallel_scaling(tmp_path):
    rows = []
    fronts = set()

    # --- workers sweep (no cache): parallel inner runs, identical results.
    for workers in WORKER_COUNTS:
        search, result, elapsed = _timed_run(_config(workers=workers))
        static_evals, dynamic_evals = result.num_evaluations
        rows.append(
            (f"workers={workers}", "none", elapsed, static_evals, dynamic_evals,
             search.service.stats.executed, 0)
        )
        fronts.add(_front_bytes(result))

    # --- cache temperature at 1 worker: cold populates, warm re-reads.
    cache_dir = str(tmp_path / "engine-cache")
    for temperature in ("cold", "warm"):
        search, result, elapsed = _timed_run(_config(cache_dir=cache_dir))
        static_evals, dynamic_evals = result.num_evaluations
        hits = search.cache.stats().hits
        rows.append(
            (f"cache {temperature}", "disk", elapsed, static_evals, dynamic_evals,
             search.static_evaluator.num_measurements, hits)
        )
        fronts.add(_front_bytes(result))
        if temperature == "warm":
            assert search.static_evaluator.num_measurements == 0
            assert search.cache.stats("static").misses == 0
            assert search.cache.stats("inner").misses == 0

    print()
    header = f"{'run':>12} {'cache':>5} {'wall (s)':>9} {'static':>7} {'dynamic':>8} {'measured/exec':>13} {'hits':>5}"
    print(header)
    print("-" * len(header))
    for name, cache, elapsed, static_evals, dynamic_evals, measured, hits in rows:
        print(
            f"{name:>12} {cache:>5} {elapsed:>9.3f} {static_evals:>7} "
            f"{dynamic_evals:>8} {measured:>13} {hits:>5}"
        )

    # Same seed ⇒ one unique Pareto front across every executor/cache combo.
    assert len(fronts) == 1
