"""EvaluationService scaling bench: workers x executor kind x cache.

Runs the same HADAS search (fixed seed) under workers ∈ {1, 2, 4}, across
executor kinds (serial / thread / process — the latter fed by the slim task
codec), and with a cold vs warm persistent cache, recording wall-clock,
evaluation counts and cache accounting.  A fig5-style multi-platform sweep
records the sharded speedup the experiment CLI's ``--executor process``
delivers.  The assertions pin the engine's contracts rather than exact
speedup numbers (thread-level speedup on a numpy workload is hardware- and
GIL-dependent):

* every configuration produces the byte-identical dynamic Pareto front, and
  the sharded fig5 sweep renders byte-identically to the serial loop;
* with ≥ 2 cores, the codec-backed process executor sustains at least
  serial throughput at the fast budget (with ≥ 4 cores, the 4-platform
  fig5 shard must be ≥ 2x faster than serial);
* a warm-cache re-run performs zero new static measurements and zero new
  inner-engine runs.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.search.hadas import HadasConfig, HadasSearch

WORKER_COUNTS = (1, 2, 4)


def _config(**overrides) -> HadasConfig:
    base = dict(
        platform="tx2-gpu",
        seed=7,
        outer_population=8,
        outer_generations=3,
        inner_population=10,
        inner_generations=4,
        ioe_candidates=3,
        oracle_samples=512,
    )
    base.update(overrides)
    return HadasConfig(**base)


def _timed_run(config: HadasConfig):
    search = HadasSearch(config)
    start = time.perf_counter()
    result = search.run()
    elapsed = time.perf_counter() - start
    search.close()
    return search, result, elapsed


def _front_bytes(result) -> bytes:
    members = sorted(result.dynn_pareto(), key=lambda ind: ind.key())
    return np.stack([ind.objectives for ind in members]).tobytes()


def test_parallel_scaling(tmp_path):
    rows = []
    fronts = set()

    # --- workers sweep (no cache): parallel inner runs, identical results.
    for workers in WORKER_COUNTS:
        search, result, elapsed = _timed_run(_config(workers=workers))
        static_evals, dynamic_evals = result.num_evaluations
        rows.append(
            (f"workers={workers}", "none", elapsed, static_evals, dynamic_evals,
             search.service.stats.executed, 0)
        )
        fronts.add(_front_bytes(result))

    # --- cache temperature at 1 worker: cold populates, warm re-reads.
    cache_dir = str(tmp_path / "engine-cache")
    for temperature in ("cold", "warm"):
        search, result, elapsed = _timed_run(_config(cache_dir=cache_dir))
        static_evals, dynamic_evals = result.num_evaluations
        hits = search.cache.stats().hits
        rows.append(
            (f"cache {temperature}", "disk", elapsed, static_evals, dynamic_evals,
             search.static_evaluator.num_measurements, hits)
        )
        fronts.add(_front_bytes(result))
        if temperature == "warm":
            assert search.static_evaluator.num_measurements == 0
            assert search.cache.stats("static").misses == 0
            assert search.cache.stats("inner").misses == 0

    print()
    header = f"{'run':>12} {'cache':>5} {'wall (s)':>9} {'static':>7} {'dynamic':>8} {'measured/exec':>13} {'hits':>5}"
    print(header)
    print("-" * len(header))
    for name, cache, elapsed, static_evals, dynamic_evals, measured, hits in rows:
        print(
            f"{name:>12} {cache:>5} {elapsed:>9.3f} {static_evals:>7} "
            f"{dynamic_evals:>8} {measured:>13} {hits:>5}"
        )

    # Same seed ⇒ one unique Pareto front across every executor/cache combo.
    assert len(fronts) == 1


def _fast_budget_config(**engine) -> HadasConfig:
    """The `fast` profile budget (what tests/CI sweeps run)."""
    from repro.experiments.config import Profile

    return Profile.fast(seed=7, **engine).hadas_config("tx2-gpu")


def test_executor_kind_sweep():
    """serial vs thread vs process at the fast budget, workers=4.

    Process tasks ride the slim task codec (specs, not pickled evaluator
    graphs); with at least two cores that must sustain serial throughput —
    the contract that makes `--executor process` worth choosing.
    """
    runs = [("serial", 1), ("thread", 4), ("process", 4)]
    rows: list[tuple[str, float]] = []
    fronts = set()
    for executor, workers in runs:
        search, result, elapsed = _timed_run(
            _fast_budget_config(workers=workers, executor=executor)
        )
        rows.append((executor, elapsed))
        fronts.add(_front_bytes(result))

    print()
    serial_wall = rows[0][1]
    print(f"{'executor':>8} {'workers':>7} {'wall (s)':>9} {'vs serial':>9}")
    for (executor, workers), (_, elapsed) in zip(runs, rows):
        print(
            f"{executor:>8} {workers:>7} {elapsed:>9.3f} {serial_wall / elapsed:>8.2f}x"
        )

    assert len(fronts) == 1  # bit-identical across executor kinds
    process_wall = rows[2][1]
    if (os.cpu_count() or 1) >= 2:
        # Throughput: process >= serial (codec keeps per-task transport slim).
        assert process_wall <= serial_wall * 1.05, (
            f"process executor slower than serial at fast budget: "
            f"{process_wall:.2f}s vs {serial_wall:.2f}s"
        )


def test_fig5_sharded_process_scaling():
    """The headline 4-platform fig5 sweep: serial loop vs process shards.

    Records the speedup `python -m repro fig5 --executor process --workers 4`
    delivers at the fast budget; on a >= 4-core runner the sharded sweep
    must be at least 2x faster than the serial loop, byte-identical output.
    """
    import dataclasses

    from repro.experiments import fig5
    from repro.experiments.config import Profile
    from repro.experiments.runner import clear_memo
    from repro.hardware.platform import PAPER_PLATFORM_ORDER

    profile = Profile.fast(seed=7)

    clear_memo()
    start = time.perf_counter()
    serial = fig5.run(profile, platforms=PAPER_PLATFORM_ORDER)
    serial_wall = time.perf_counter() - start
    serial_text = fig5.render(serial)

    clear_memo()
    sharded_profile = dataclasses.replace(profile, workers=4, executor="process")
    start = time.perf_counter()
    sharded = fig5.run(sharded_profile, platforms=PAPER_PLATFORM_ORDER)
    sharded_wall = time.perf_counter() - start
    clear_memo()

    speedup = serial_wall / sharded_wall
    print(
        f"\nfig5 4-platform sweep: serial {serial_wall:.1f}s, "
        f"process x4 {sharded_wall:.1f}s ({speedup:.2f}x, "
        f"{os.cpu_count()} cores)"
    )
    assert fig5.render(sharded) == serial_text  # bit-identical report
    cores = os.cpu_count() or 1
    if cores >= 4:
        assert speedup >= 2.0, (
            f"sharded fig5 below 2x on a {cores}-core machine: {speedup:.2f}x"
        )
    elif cores >= 2:
        assert sharded_wall <= serial_wall * 1.05
