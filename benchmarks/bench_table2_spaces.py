"""Table II bench: search-space definition and cardinalities."""

from __future__ import annotations

from repro.arch.space import BackboneSpace
from repro.experiments import table2


def test_table2_spaces(benchmark):
    result = benchmark(table2.run)
    print()
    print(table2.render(result))

    # Paper: the backbone space holds more than 2.94e11 networks.
    assert result.backbone_cardinality > table2.PAPER_BACKBONE_CARDINALITY
    # Table II row checks, derived (not hard-coded): 16 widths in [16, 1984],
    # depths {1..8}, kernels {3, 5}, expands {1, 4, 5, 6}, 4 resolutions.
    space = BackboneSpace()
    widths = space.distinct_widths()
    assert len(widths) == 16 and widths[0] == 16 and widths[-1] == 1984
    assert space.depth_values() == (1, 2, 3, 4, 5, 6, 7, 8)
    assert len(space.resolutions) == 4
