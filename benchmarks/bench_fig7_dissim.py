"""Fig. 7 bench: the dissimilarity-regulariser ablation.

Paper: including ``dissim^gamma`` improves the IOE's RoD by ~15 % (low
gamma) and ~41 % (high gamma).  Fast-budget shape requirement: the
regularised arms are not dominated (RoD improvement >= 0 for at least one
arm) and the clustered-exit pathology is measurably worse than spread
placements in real metrics (asserted mechanistically).
"""

from __future__ import annotations

from repro.baselines.attentivenas import attentivenas_model
from repro.accuracy.surrogate import AccuracySurrogate
from repro.eval.static import StaticEvaluator
from repro.exits.placement import ExitPlacement
from repro.experiments import fig7
from repro.hardware.platform import get_platform
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import Nsga2Config


def test_fig7_dissim(benchmark, profile):
    result = benchmark(fig7.run, profile)
    print()
    print(fig7.render(result))

    improvements = [
        result.rod_improvement(result.with_low),
        result.rod_improvement(result.with_high),
    ]
    print(f"RoD improvements: {[f'{x * 100:.1f}%' for x in improvements]} (paper: 15% / 41%)")
    assert max(improvements) >= 0.0

    # Mechanistic check behind the ablation: clustered exits are redundant
    # (correlated errors), so a spread placement of equal size dominates a
    # clustered one on real energy gain at comparable dynamic accuracy.
    backbone = attentivenas_model("a3")
    platform = get_platform("tx2-gpu")
    surrogate = AccuracySurrogate(seed=profile.seed)
    static_eval = StaticEvaluator(platform, surrogate, seed=profile.seed)
    engine = InnerEngine(
        backbone,
        static_eval,
        surrogate.accuracy_fraction(backbone),
        nsga=Nsga2Config(population=8, generations=2),
        seed=profile.seed,
    )
    total = backbone.total_mbconv_layers
    default = static_eval.default_setting
    clustered = engine.evaluator.evaluate(
        ExitPlacement(total, (9, 10, 11)), default
    )
    spread = engine.evaluator.evaluate(ExitPlacement(total, (6, 10, 14)), default)
    assert spread.energy_gain > clustered.energy_gain
    assert spread.dynamic_accuracy >= clustered.dynamic_accuracy - 0.005
