"""Table I bench: related-work feature matrix."""

from __future__ import annotations

from repro.experiments import table1


def test_table1_features(benchmark):
    rows = benchmark(table1.run)
    print()
    print(table1.render(rows))

    by_name = {row.name: row for row in rows}
    hadas = by_name["HADAS"]
    # HADAS is the only framework covering all four axes (paper Table I).
    assert hadas.early_exiting and hadas.nas and hadas.dvfs and hadas.compatibility
    for row in rows:
        if row.name != "HADAS":
            assert not (row.early_exiting and row.nas and row.dvfs and row.compatibility)
