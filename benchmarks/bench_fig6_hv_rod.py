"""Fig. 6 bench: hypervolume and RoD comparison across platforms.

Paper: HADAS beats the optimized baselines on both metrics on all four
platforms (HV by 11-23 %, RoD by 44-95 %).  Fast-budget shape requirement:
RoD advantage positive everywhere; HV advantage positive on average.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig6


def test_fig6_hv_rod(benchmark, profile):
    result = benchmark(fig6.run, profile)
    print()
    print(fig6.render(result))

    for row in result.rows:
        assert row.rod_advantage > 0, row.platform
        assert row.hv_hadas > 0 and row.hv_baseline > 0
    mean_hv_gain = float(np.mean([row.hv_gain for row in result.rows]))
    print(f"mean HV gain = {mean_hv_gain * 100:.1f}% (paper: 11-23% per platform)")
    assert mean_hv_gain > 0.0
