"""Fig. 5 (bottom row) bench: IOE dynamic Paretos, HADAS vs optimized
baselines, with the ratio-of-dominance annotations.

Paper RoD per platform: 51.9 / 37.5 / 82.4 / 62.1 % (mean 58.4 %).  The
shape requirement: HADAS's front dominates the baselines' more than the
reverse on every platform, with a paper-scale mean.
"""

from __future__ import annotations

from repro.experiments import fig5


def test_fig5_ioe(benchmark, profile):
    result = benchmark(fig5.run, profile)
    print()
    print(fig5.render(result).split("Fig.5 top")[0])
    for platform, panel in result.panels.items():
        dom = panel.experiment.dominance()
        print(
            f"{platform}: RoD ours {dom.rod_a_over_b * 100:5.1f}% / theirs "
            f"{dom.rod_b_over_a * 100:5.1f}% (paper ours: "
            f"{fig5.PAPER_ROD[platform] * 100:.1f}%)"
        )
    mean_rod = result.mean_rod()
    print(f"mean RoD = {mean_rod * 100:.1f}% (paper: 58.4%)")

    for platform, panel in result.panels.items():
        dom = panel.experiment.dominance()
        # HADAS dominates more than it is dominated, everywhere.
        assert dom.rod_a_over_b > dom.rod_b_over_a, platform
    # Mean RoD lands in the paper's neighbourhood (58.4 +- ~20 points).
    assert 0.30 < mean_rod < 0.90
