"""Component performance benches: the substrate costs bounding search time.

Not a paper artifact — these measure the building blocks so regressions in
the hot paths (NSGA-II iteration, the roofline model, the numpy NN) are
caught by ``pytest benchmarks/ --benchmark-only`` alongside the artifact
benches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cost import estimate_cost
from repro.arch.space import BackboneSpace
from repro.baselines.attentivenas import attentivenas_model
from repro.accuracy.surrogate import AccuracySurrogate
from repro.eval.static import StaticEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.energy import EnergyModel
from repro.hardware.platform import get_platform
from repro.metrics.hypervolume import hypervolume
from repro.metrics.pareto import non_dominated_sort
from repro.nn import Conv2d, Tensor
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import Nsga2Config


def test_bench_cost_model(benchmark):
    """Per-layer cost lowering of the largest baseline."""
    config = attentivenas_model("a6")
    cost = benchmark(estimate_cost, config)
    assert cost.total_macs > 5e8


def test_bench_energy_model(benchmark):
    """Full-network roofline + power evaluation at one DVFS setting."""
    platform = get_platform("tx2-gpu")
    model = EnergyModel(platform)
    cost = estimate_cost(attentivenas_model("a6"))
    setting = DvfsSpace(platform).default_setting()
    report = benchmark(model.network_report, cost, setting)
    assert report.energy_j > 0


def test_bench_dvfs_sweep(benchmark):
    """Exhaustive DVFS-grid sweep for one network (143 settings on TX2)."""
    platform = get_platform("tx2-gpu")
    model = EnergyModel(platform)
    cost = estimate_cost(attentivenas_model("a0"))
    dvfs = DvfsSpace(platform)

    def sweep() -> float:
        return min(model.network_energy_j(cost, s) for s in dvfs.all_settings())

    best = benchmark(sweep)
    assert best > 0


def test_bench_nsga2_sort(benchmark):
    """Non-dominated sort of a 200-point, 3-objective population."""
    rng = np.random.default_rng(0)
    points = rng.random((200, 3))
    fronts = benchmark(non_dominated_sort, points)
    assert sum(len(f) for f in fronts) == 200


def test_bench_hypervolume_3d(benchmark):
    """Exact 3-D hypervolume of a 100-point front."""
    rng = np.random.default_rng(1)
    points = rng.random((100, 3))
    value = benchmark(hypervolume, points, np.zeros(3))
    assert 0 < value < 1


def test_bench_dynamic_evaluation(benchmark):
    """One full D(x, f | b) evaluation (oracle + composite energy paths)."""
    backbone = attentivenas_model("a3")
    platform = get_platform("tx2-gpu")
    surrogate = AccuracySurrogate(seed=0)
    static_eval = StaticEvaluator(platform, surrogate, seed=0)
    engine = InnerEngine(
        backbone, static_eval, surrogate.accuracy_fraction(backbone),
        nsga=Nsga2Config(population=8, generations=2), seed=0,
    )
    total = backbone.total_mbconv_layers
    placement = ExitPlacement(total, (5, 9, 13, 17))
    setting = static_eval.default_setting

    def evaluate():
        engine.evaluator._eval_cache.clear()
        return engine.evaluator.evaluate(placement, setting)

    evaluation = benchmark(evaluate)
    assert evaluation.energy_gain > 0


def test_bench_nn_forward_backward(benchmark):
    """Forward+backward of a conv layer on a small batch (training step cost)."""
    conv = Conv2d(8, 16, 3, rng=0)
    x = np.random.default_rng(2).normal(size=(8, 8, 16, 16))

    def step():
        t = Tensor(x, requires_grad=True)
        out = conv(t)
        (out * out).sum().backward()
        return out

    out = benchmark(step)
    assert out.shape == (8, 16, 16, 16)


def test_bench_backbone_sampling(benchmark):
    """Genome sample + decode + encode round-trip throughput."""
    space = BackboneSpace()
    rng = np.random.default_rng(3)

    def roundtrip():
        genome = space.sample_genome(rng)
        config = space.decode(genome)
        return space.encode(config)

    genome = benchmark(roundtrip)
    assert len(genome) == space.genome_length
