"""Ablation benches for the design choices DESIGN.md §4 calls out.

Not paper artifacts — these quantify the contribution of individual design
decisions: early-selection pruning in the OOE, NSGA-II vs random search,
the HW proxy vs HW-in-the-loop, and per-exit DVFS vs the single searched
setting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.cost import estimate_cost
from repro.baselines.attentivenas import attentivenas_model, attentivenas_models
from repro.accuracy.surrogate import AccuracySurrogate
from repro.eval.static import StaticEvaluator
from repro.exits.placement import ExitPlacement
from repro.hardware.dvfs import DvfsSpace
from repro.hardware.measurement import HardwareInTheLoop
from repro.hardware.platform import get_platform
from repro.hardware.proxy import HardwareProxy
from repro.metrics.hypervolume import hypervolume
from repro.metrics.pareto import pareto_front
from repro.runtime.planner import plan_per_exit_dvfs
from repro.search.hadas import HadasConfig, HadasSearch
from repro.search.ioe import InnerEngine
from repro.search.nsga2 import NSGA2, Nsga2Config
from repro.search.random_search import RandomSearch


def test_ablation_early_selection_pruning(benchmark):
    """P'_B pruning: granting every backbone an IOE run must cost far more
    dynamic evaluations without a commensurate quality gain."""

    def run(candidates: int):
        config = HadasConfig(
            platform="tx2-gpu", seed=19,
            outer_population=8, outer_generations=3,
            inner_population=8, inner_generations=3,
            ioe_candidates=candidates, oracle_samples=512,
        )
        return HadasSearch(config).run()

    pruned = benchmark(run, 2)
    unpruned = run(8)
    print()
    print(f"pruned  (P'_B=2): {pruned.num_evaluations[1]:4d} dynamic evals")
    print(f"unpruned (P'_B=8): {unpruned.num_evaluations[1]:4d} dynamic evals")
    assert unpruned.num_evaluations[1] > 2 * pruned.num_evaluations[1]
    # The pruned run still finds a competitive best model (within 25% of the
    # unpruned energy gain).
    best_pruned = pruned.selected_model().payload["evaluation"].energy_gain
    best_unpruned = unpruned.selected_model().payload["evaluation"].energy_gain
    print(f"best energy gain: pruned {best_pruned:.3f} vs unpruned {best_unpruned:.3f}")
    assert best_pruned > best_unpruned - 0.25


def test_ablation_nsga2_vs_random(benchmark):
    """NSGA-II covers more (X, F) hypervolume than random at equal budget."""
    backbone = attentivenas_model("a3")
    platform = get_platform("tx2-gpu")
    surrogate = AccuracySurrogate(seed=7)
    static_eval = StaticEvaluator(platform, surrogate, seed=7)
    # 400 evaluations: enough selection pressure for a decisive margin
    # (at ~150 evals random search is still competitive in 3-D).
    budget = Nsga2Config(population=20, generations=20)
    engine = InnerEngine(
        backbone, static_eval, surrogate.accuracy_fraction(backbone),
        nsga=budget, seed=7,
    )

    def evolved():
        nsga = NSGA2(engine.problem, budget, rng=1)
        nsga.run()
        return np.stack([ind.objectives for ind in nsga.history])

    evolved_points = benchmark(evolved)
    random = RandomSearch(engine.problem, budget=budget.iterations, rng=1)
    random.run()
    random_points = np.stack([ind.objectives for ind in random.history])

    reference = np.minimum(evolved_points.min(axis=0), random_points.min(axis=0)) - 0.01
    hv_evolved = hypervolume(pareto_front(evolved_points), reference)
    hv_random = hypervolume(pareto_front(random_points), reference)
    print(f"\nIOE hypervolume: NSGA-II {hv_evolved:.4f} vs random {hv_random:.4f}")
    assert hv_evolved > hv_random
    assert len(pareto_front(evolved_points)) >= 3


def test_ablation_hw_proxy(benchmark):
    """The paper's proxy-model extension: a regression proxy fitted on a few
    measured points predicts latency/energy within ~10% MAPE."""
    platform = get_platform("tx2-gpu")
    hwil = HardwareInTheLoop(platform, noise_cv=0.01, seed=0)
    models = attentivenas_models()
    train_costs = [estimate_cost(models[n]) for n in ("a0", "a2", "a4", "a6")]
    test_costs = [estimate_cost(models[n]) for n in ("a1", "a3", "a5")]

    def fit():
        proxy = HardwareProxy(platform)
        proxy.fit(train_costs, hwil, settings_per_network=10, seed=0)
        return proxy

    proxy = benchmark(fit)
    accuracy = proxy.validate(test_costs, hwil, settings_per_network=6, seed=1)
    print(f"\nproxy MAPE: latency {accuracy.latency_mape * 100:.1f}% "
          f"energy {accuracy.energy_mape * 100:.1f}% "
          f"({proxy.num_training_points} training measurements)")
    assert accuracy.latency_mape < 0.15
    assert accuracy.energy_mape < 0.15


def test_ablation_per_exit_dvfs(benchmark):
    """Per-exit frequency scaling saves energy beyond the single setting."""
    backbone = attentivenas_model("a3")
    platform = get_platform("tx2-gpu")
    surrogate = AccuracySurrogate(seed=7)
    static_eval = StaticEvaluator(platform, surrogate, seed=7)
    engine = InnerEngine(
        backbone, static_eval, surrogate.accuracy_fraction(backbone),
        nsga=Nsga2Config(population=8, generations=3), seed=7,
    )
    placement = ExitPlacement(backbone.total_mbconv_layers, (6, 10, 14, 18))

    plan = benchmark(
        plan_per_exit_dvfs, engine.evaluator, placement, DvfsSpace(platform)
    )
    print(f"\nsingle setting: {plan.single_setting_energy_j * 1e3:.1f} mJ | "
          f"per-exit table: {plan.per_exit_energy_j * 1e3:.1f} mJ | "
          f"extra gain {plan.extra_gain * 100:.1f}%")
    assert plan.per_exit_energy_j <= plan.single_setting_energy_j + 1e-12
    assert len(plan.settings) == placement.num_exits + 1
